"""The concurrent decision service front door.

:class:`DecisionService` turns a :class:`~repro.service.sharding.ShardedEngine`
into a throughput-oriented authorization service:

* a ``ThreadPoolExecutor`` worker pool serves requests;
* each shard has a **bounded FIFO queue** — submission applies
  backpressure when a shard falls behind (or rejects immediately with
  ``block=False``), so a hot shard cannot grow unbounded memory;
* a worker drains a shard by popping the queue **under the shard
  lock** and deciding in the same critical section, which preserves
  per-session request order exactly — the concurrency property test
  relies on this to reproduce single-threaded outcomes;
* throughput and latency counters are exposed as a
  :meth:`~DecisionService.service_stats` snapshot, resettable for
  warm steady-state benchmarking.

An optional ``post_decision_hook`` runs *outside* the shard lock after
each decision — the integration point for downstream effects such as
handing granted proofs to a :class:`~repro.service.batching.ProofBatch`
or emulating the network round trip that delivers the grant (the
concurrent-service benchmark uses it for its latency model).
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import ServiceError
from repro.faults.retry import RetryPolicy
from repro.obs import OBS, RECORDER, REGISTRY
from repro.rbac.audit import Decision
from repro.rbac.engine import Session
from repro.service.sharding import ShardedEngine
from repro.sral.ast import Program
from repro.traces.trace import AccessKey, Trace

__all__ = ["DecisionService", "ServiceStats"]

#: Record one ``service.request`` span per this many completed requests
#: (histogram observations are unsampled; spans carry the per-phase
#: breakdown and only need to be representative).
REQUEST_SPAN_SAMPLE = 16


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of the service counters (one benchmark report row)."""

    submitted: int
    completed: int
    granted: int
    denied: int
    errors: int
    rejected: int
    total_latency_s: float
    max_latency_s: float
    queue_depths: tuple[int, ...]
    shard_decisions: tuple[int, ...]
    workers: int
    shards: int
    hook_retries: int = 0
    #: Requests whose future was cancelled before a worker picked them
    #: up (they are popped, never decided, and count toward drain()).
    cancelled: int = 0

    @property
    def mean_latency_s(self) -> float:
        return self.total_latency_s / self.completed if self.completed else 0.0

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "granted": self.granted,
            "denied": self.denied,
            "errors": self.errors,
            "rejected": self.rejected,
            "mean_latency_ms": self.mean_latency_s * 1e3,
            "max_latency_ms": self.max_latency_s * 1e3,
            "queue_depths": list(self.queue_depths),
            "shard_decisions": list(self.shard_decisions),
            "workers": self.workers,
            "shards": self.shards,
            "hook_retries": self.hook_retries,
            "cancelled": self.cancelled,
        }


class DecisionService:
    """Worker pool + per-shard bounded queues over a sharded engine.

    Parameters
    ----------
    engine:
        The sharded engine (or a plain policy is *not* accepted — build
        the :class:`ShardedEngine` explicitly so its shard count and
        engine configuration are visible at the call site).
    workers:
        Thread-pool size.  Useful values are ≤ the shard count for
        CPU-bound decision mixes (the GIL serialises pure-Python
        compute anyway) and larger when the post-decision hook blocks
        on I/O or emulated network latency.
    queue_depth:
        Bound of each shard's request queue (backpressure threshold).
    post_decision_hook:
        ``Callable[[Decision], None]`` run outside the shard lock after
        every decision, before the future resolves.
    hook_retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` for the
        post-decision hook.  The hook is the delivery edge of the
        service (it typically feeds a
        :class:`~repro.service.batching.ProofBatch` or an emulated
        network); with a policy attached, a raising hook is re-invoked
        on the deterministic backoff schedule (real ``time.sleep`` —
        size the delays for the deployment) before the error is
        surfaced on the future.
    """

    def __init__(
        self,
        engine: ShardedEngine,
        workers: int = 4,
        queue_depth: int = 1024,
        post_decision_hook: Callable[[Decision], None] | None = None,
        hook_retry: RetryPolicy | None = None,
    ):
        if workers < 1:
            raise ServiceError(f"worker count must be >= 1, got {workers}")
        if queue_depth < 1:
            raise ServiceError(f"queue depth must be >= 1, got {queue_depth}")
        self.engine = engine
        self.workers = workers
        self._hook = post_decision_hook
        self._hook_retry = hook_retry
        self._queues: list[queue.Queue] = [
            queue.Queue(maxsize=queue_depth) for _ in range(engine.shard_count)
        ]
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="decision-worker"
        )
        self._closed = False
        self._stats_lock = threading.Lock()
        self._idle = threading.Condition(self._stats_lock)
        self._submitted = 0
        self._completed = 0
        self._granted = 0
        self._denied = 0
        self._errors = 0
        self._rejected = 0
        self._total_latency = 0.0
        self._max_latency = 0.0
        self._hook_retries = 0
        self._cancelled = 0
        # Pre-bound per-shard instruments (one registry lookup here, a
        # single striped-lock observe per event) — recorded only while
        # repro.obs is enabled.
        self._obs_queue_wait = [
            REGISTRY.histogram("service.queue_wait_s", shard=str(i))
            for i in range(engine.shard_count)
        ]
        self._obs_decide = [
            REGISTRY.histogram("service.decide_s", shard=str(i))
            for i in range(engine.shard_count)
        ]
        self._obs_hook = [
            REGISTRY.histogram("service.hook_s", shard=str(i))
            for i in range(engine.shard_count)
        ]
        self._obs_cancelled = REGISTRY.counter("service.cancelled")
        self._obs_rejected = REGISTRY.counter("service.rejected")

    # -- submission -------------------------------------------------------------

    def submit(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = None,
        program: Program | None = None,
        observe_granted: bool = False,
        block: bool = True,
        timeout: float | None = None,
    ) -> "Future[Decision]":
        """Enqueue one request; returns a future for its
        :class:`~repro.rbac.audit.Decision`.

        ``history=None`` (the default) selects the engine's
        **incremental mode**: the spatial check runs against the
        session's own observed history via cached monitor states.  Pass
        an explicit trace — ``()`` for "no proved history" — to check
        against exactly that trace instead.  The default is ``None`` on
        :meth:`submit`, :meth:`decide` and :meth:`submit_many` alike,
        so single and batched submission of the same request decide
        identically.

        ``block=True`` (default) applies backpressure when the owning
        shard's queue is full; ``block=False`` raises
        :class:`~repro.errors.ServiceError` instead.  With
        ``observe_granted`` a granted access is fed back through
        :meth:`~repro.rbac.engine.AccessControlEngine.observe` in the
        same critical section (the executing-client pattern).
        """
        if self._closed:
            raise ServiceError("service is shut down")
        index = self.engine.shard_of(session)
        future: Future[Decision] = Future()
        item = (
            future,
            session,
            AccessKey(*access),
            t,
            history,
            program,
            observe_granted,
            time.perf_counter(),
        )
        # Count the submission *before* the queue put: a worker can
        # complete the request between the put and any later increment,
        # which would let observers see completed > submitted.  On
        # rejection the reservation is rolled back.
        with self._stats_lock:
            self._submitted += 1
        try:
            self._queues[index].put(item, block=block, timeout=timeout)
        except queue.Full:
            with self._stats_lock:
                self._submitted -= 1
                self._rejected += 1
            if OBS.enabled:
                self._obs_rejected.inc()
            raise ServiceError(
                f"shard {index} queue is full "
                f"({self._queues[index].maxsize} pending)"
            ) from None
        self._executor.submit(self._drain_one, index)
        return future

    def decide(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = None,
        program: Program | None = None,
    ) -> Decision:
        """Synchronous convenience: submit and wait (incremental-mode
        history by default, like :meth:`submit`)."""
        return self.submit(session, access, t, history, program).result()

    def submit_many(
        self,
        requests: Iterable[
            tuple[Session, AccessKey | tuple[str, str, str], float]
        ],
        observe_granted: bool = False,
    ) -> "list[Future[Decision]]":
        """Submit a batch of ``(session, access, t)`` requests, each in
        incremental-history mode — the same default as :meth:`submit`,
        so batch and single submission decide identically."""
        return [
            self.submit(
                session, access, t, history=None, observe_granted=observe_granted
            )
            for session, access, t in requests
        ]

    # -- worker side ------------------------------------------------------------

    def _drain_one(self, index: int) -> None:
        obs_on = OBS.enabled
        shard = self.engine._shards[index]
        with shard.lock:
            try:
                item = self._queues[index].get_nowait()
            except queue.Empty:  # pragma: no cover - defensive
                return
            (
                future,
                session,
                access,
                t,
                history,
                program,
                observe_granted,
                enqueued_at,
            ) = item
            # Honour cancellation: only a future that transitions to
            # RUNNING here gets decided.  cancel() returns False from
            # now on, so the set_result/set_exception below cannot
            # race a concurrent cancel.
            if not future.set_running_or_notify_cancel():
                with self._stats_lock:
                    self._cancelled += 1
                    self._idle.notify_all()
                if obs_on:
                    self._obs_cancelled.inc()
                return
            popped_at = time.perf_counter()
            try:
                decision = self.engine._decide_on(
                    shard, session, access, t, history, program
                )
                if observe_granted and decision.granted:
                    shard.engine.observe(session, access)
                error: BaseException | None = None
            except BaseException as exc:
                decision = None
                error = exc
        # Outside the shard lock: downstream effects + future resolution.
        decided_at = time.perf_counter()
        if error is None and self._hook is not None:
            error = self._run_hook(decision)
        done_at = time.perf_counter()
        latency = done_at - enqueued_at
        with self._stats_lock:
            self._completed += 1
            completed = self._completed
            self._total_latency += latency
            self._max_latency = max(self._max_latency, latency)
            if error is not None:
                self._errors += 1
            elif decision.granted:
                self._granted += 1
            else:
                self._denied += 1
            self._idle.notify_all()
        if obs_on:
            queue_wait = popped_at - enqueued_at
            decide_s = decided_at - popped_at
            hook_s = done_at - decided_at
            self._obs_queue_wait[index].observe(queue_wait)
            self._obs_decide[index].observe(decide_s)
            if self._hook is not None:
                self._obs_hook[index].observe(hook_s)
            if completed % REQUEST_SPAN_SAMPLE == 0:
                RECORDER.record(
                    "service.request",
                    enqueued_at,
                    latency,
                    {
                        "shard": index,
                        "queue_wait_s": queue_wait,
                        "decide_s": decide_s,
                        "hook_s": hook_s,
                        "sampled": REQUEST_SPAN_SAMPLE,
                    },
                    error=type(error).__name__ if error is not None else None,
                )
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(decision)

    def _run_hook(self, decision: Decision) -> BaseException | None:
        """Invoke the post-decision hook, retrying per ``hook_retry``.
        Returns the final exception, or None on success."""
        attempt = 0
        first_failure: float | None = None
        while True:
            try:
                self._hook(decision)
                return None
            except BaseException as exc:
                now = time.monotonic()
                if first_failure is None:
                    first_failure = now
                if self._hook_retry is None or self._hook_retry.exhausted(
                    attempt, first_failure, now
                ):
                    return exc
                time.sleep(self._hook_retry.delay(attempt))
                attempt += 1
                with self._stats_lock:
                    self._hook_retries += 1

    # -- synchronisation ----------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted request has completed (the
        service-level ``flush()``).  Returns ``False`` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._completed + self._cancelled < self._submitted:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    # -- stats ------------------------------------------------------------------

    def service_stats(self) -> ServiceStats:
        shard_rows = self.engine.shard_stats()
        with self._stats_lock:
            return ServiceStats(
                submitted=self._submitted,
                completed=self._completed,
                granted=self._granted,
                denied=self._denied,
                errors=self._errors,
                rejected=self._rejected,
                total_latency_s=self._total_latency,
                max_latency_s=self._max_latency,
                queue_depths=tuple(q.qsize() for q in self._queues),
                shard_decisions=tuple(row["decisions"] for row in shard_rows),
                workers=self.workers,
                shards=self.engine.shard_count,
                hook_retries=self._hook_retries,
                cancelled=self._cancelled,
            )

    def reset_stats(self) -> None:
        """Zero the service counters and the engine-side counters so a
        benchmark can measure warm steady-state without restarting."""
        with self._stats_lock:
            self._submitted -= self._completed + self._cancelled
            self._completed = 0
            self._granted = 0
            self._denied = 0
            self._errors = 0
            self._rejected = 0
            self._total_latency = 0.0
            self._max_latency = 0.0
            self._hook_retries = 0
            self._cancelled = 0
        self.engine.reset_stats()

    # -- lifecycle ----------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "DecisionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
