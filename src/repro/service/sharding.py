"""Session-sharded access-control engines.

The paper's coalition serves authorization at *every* cooperating
server, but one :class:`~repro.rbac.engine.AccessControlEngine` is a
single-threaded object: its candidate cache, session table and audit
log are mutated on every decision.  :class:`ShardedEngine` partitions
sessions across N engine shards by a **stable hash of the routing
key** (the owner's user name by default), so:

* requests of different agents land on different shards and proceed in
  parallel — each shard is guarded by its own lock;
* every session of one user lands on the *same* shard, which keeps the
  owner-coordination scope (combined companion histories, Section 1)
  correct without cross-shard synchronisation;
* the expensive read-mostly artifacts — interned compiled constraints
  and precomputed live sets (:mod:`repro.srac.monitors`,
  :mod:`repro.srac.reachability`) — remain **process-global**: they
  are immutable once built and their tables are lock-guarded, so all
  shards share one copy and one warm-up.

Per-shard state (sessions, validity trackers, candidate/extension
entry caches, audit log) is touched only under the shard lock, so the
engine internals need no locks of their own.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.concurrency import stripe_index
from repro.errors import ServiceError
from repro.rbac.audit import Decision
from repro.rbac.engine import AccessControlEngine, EngineCacheStats, Session
from repro.rbac.policy import Policy
from repro.srac.reachability import cache_stats as srac_cache_stats
from repro.srac.reachability import reset_cache_stats
from repro.sral.ast import Program
from repro.traces.trace import AccessKey, Trace

__all__ = ["ShardedEngine"]


class _Shard:
    """One engine plus its guard lock and throughput counters."""

    __slots__ = ("index", "engine", "lock", "decisions", "granted")

    def __init__(self, index: int, engine: AccessControlEngine):
        self.index = index
        self.engine = engine
        self.lock = threading.Lock()
        self.decisions = 0
        self.granted = 0


class ShardedEngine:
    """N engine shards behind stable-hash session routing.

    Parameters
    ----------
    policy:
        Shared by every shard (policies are read-mostly; mutations bump
        the version counter, which each shard's candidate cache already
        honours).
    shards:
        Number of engine shards.
    engine_kwargs:
        Forwarded to every :class:`AccessControlEngine` (scheme,
        extension alphabet, coordination scope, ...), so all shards
        decide identically.
    """

    def __init__(self, policy: Policy, shards: int = 4, **engine_kwargs):
        if shards < 1:
            raise ServiceError(f"shard count must be >= 1, got {shards}")
        self._shards = [
            _Shard(i, AccessControlEngine(policy, **engine_kwargs))
            for i in range(shards)
        ]
        self.policy = policy
        # Attribute routing: every session minted by a shard engine is
        # stamped with its shard index and this token, so ``shard_of``
        # is two attribute reads — no per-session route dict to grow
        # (and leak) alongside a million-session store.
        self._token = object()
        for shard in self._shards:
            shard.engine.shard_index = shard.index
            shard.engine.router_token = self._token

    # -- routing --------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard_index(self, key: str) -> int:
        """The shard a routing key maps to (stable across processes)."""
        return stripe_index(key, len(self._shards))

    def shard_of(self, session: Session) -> int:
        """The shard that owns ``session`` (its routing stamp)."""
        if getattr(session, "_router", None) is self._token:
            return session._shard_index
        raise ServiceError(
            f"session {session.session_id!r} is not routed through this "
            f"sharded engine"
        )

    def _shard_for(self, session: Session) -> _Shard:
        return self._shards[self.shard_of(session)]

    # -- session management ----------------------------------------------------

    def authenticate(
        self,
        user_name: str,
        t: float,
        principals: Iterable[str] = (),
        shard_key: str | None = None,
    ) -> Session:
        """Authenticate on the shard chosen by ``shard_key`` (default:
        the user name, so companion sessions of one owner co-locate and
        owner-scope coordination stays shard-local)."""
        index = self.shard_index(shard_key if shard_key is not None else user_name)
        shard = self._shards[index]
        with shard.lock:
            return shard.engine.authenticate(user_name, t, principals)

    def open_sessions(
        self,
        user_names: Iterable[str],
        t: float,
        roles: Iterable[str] = (),
    ) -> dict[int, "np.ndarray"]:
        """Bulk-open sessions across shards (columnar engines only):
        users are routed by name exactly as :meth:`authenticate` would,
        then each shard bulk-loads its share
        (:meth:`AccessControlEngine.open_sessions`).  Returns
        ``{shard_index: row_indices}``; :meth:`session_at` materialises
        handles on demand."""
        roles = tuple(roles)
        by_shard: dict[int, list[str]] = {}
        for name in user_names:
            by_shard.setdefault(self.shard_index(name), []).append(name)
        out: dict[int, "np.ndarray"] = {}
        for index, names in sorted(by_shard.items()):
            shard = self._shards[index]
            with shard.lock:
                out[index] = shard.engine.open_sessions(names, t, roles)
        return out

    def session_at(self, shard_index: int, row: int) -> Session:
        """The session handle at ``row`` of shard ``shard_index``."""
        shard = self._shards[shard_index]
        with shard.lock:
            return shard.engine.session_at(row)

    def close_session(self, session: Session, t: float) -> None:
        shard = self._shard_for(session)
        with shard.lock:
            shard.engine.close_session(session, t)

    def expire_sessions(
        self, now: float | None = None, idle_for: float = 0.0
    ) -> int:
        """Expire idle sessions on every shard (see
        :meth:`AccessControlEngine.expire_sessions`)."""
        expired = 0
        for shard in self._shards:
            with shard.lock:
                expired += shard.engine.expire_sessions(now, idle_for)
        return expired

    def resident_sessions(self) -> int:
        """Resident sessions summed across shards."""
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += shard.engine.resident_sessions()
        return total

    def activate_role(self, session: Session, role_name: str, t: float) -> None:
        shard = self._shard_for(session)
        with shard.lock:
            shard.engine.activate_role(session, role_name, t)

    def deactivate_role(self, session: Session, role_name: str, t: float) -> None:
        shard = self._shard_for(session)
        with shard.lock:
            shard.engine.deactivate_role(session, role_name, t)

    def notify_migration(self, session: Session, t: float) -> None:
        shard = self._shard_for(session)
        with shard.lock:
            shard.engine.notify_migration(session, t)

    def observe(
        self, session: Session, access: AccessKey | tuple[str, str, str]
    ) -> None:
        shard = self._shard_for(session)
        with shard.lock:
            shard.engine.observe(session, access)

    # -- decisions ---------------------------------------------------------------

    def decide(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = (),
        program: Program | None = None,
    ) -> Decision:
        shard = self._shard_for(session)
        with shard.lock:
            return self._decide_on(shard, session, access, t, history, program)

    def _decide_on(
        self,
        shard: _Shard,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = (),
        program: Program | None = None,
    ) -> Decision:
        """Decide with ``shard.lock`` already held (the
        :class:`~repro.service.service.DecisionService` drain path —
        it must pop the shard queue and decide under one critical
        section to preserve per-session FIFO order)."""
        decision = shard.engine.decide(session, access, t, history, program)
        shard.decisions += 1
        if decision.granted:
            shard.granted += 1
        return decision

    def enforce(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = (),
        program: Program | None = None,
    ) -> Decision:
        shard = self._shard_for(session)
        with shard.lock:
            decision = self._decide_on(shard, session, access, t, history, program)
        if not decision.granted:
            from repro.errors import AccessDenied

            raise AccessDenied(
                f"access {AccessKey(*access)} denied: {decision.reason}",
                decision=decision,
            )
        return decision

    def decide_batch(
        self,
        session: Session,
        accesses: Iterable[AccessKey | tuple[str, str, str]],
        t: float,
        dt: float = 0.0,
        history: Trace | None = None,
        program: Program | None = None,
        observe_granted: bool = False,
    ) -> list[Decision]:
        shard = self._shard_for(session)
        with shard.lock:
            decisions = shard.engine.decide_batch(
                session, accesses, t, dt, history, program, observe_granted
            )
        shard.decisions += len(decisions)
        shard.granted += sum(d.granted for d in decisions)
        return decisions

    def decide_batch_many(
        self,
        requests: Iterable[tuple[Session, AccessKey | tuple[str, str, str]]],
        t: float,
        dt: float = 0.0,
    ) -> list[Decision]:
        """Decide an interleaved multi-session request stream: the i-th
        request is decided at ``t + i·dt`` on a global clock, requests
        are regrouped per owning shard (preserving per-session order —
        what the routing invariant guarantees a client anyway), and
        each shard sweeps its share with the vectorized
        :meth:`AccessControlEngine.decide_batch_many` under its own
        lock.  Returns decisions in request order."""
        pairs = [(session, access) for session, access in requests]
        times: list[float] = []
        clock = t
        for _ in pairs:
            times.append(clock)
            clock += dt
        by_shard: dict[int, list[int]] = {}
        for i, (session, _access) in enumerate(pairs):
            by_shard.setdefault(self.shard_of(session), []).append(i)
        decisions: list[Decision] = [None] * len(pairs)  # type: ignore[list-item]
        for index, indices in by_shard.items():
            shard = self._shards[index]
            with shard.lock:
                swept = shard.engine.decide_batch_many(
                    [pairs[i] for i in indices],
                    t,
                    dt,
                    times=[times[i] for i in indices],
                )
            shard.decisions += len(indices)
            shard.granted += sum(d.granted for d in swept)
            for local, i in enumerate(indices):
                decisions[i] = swept[local]
        return decisions

    # -- coalition membership -----------------------------------------------------

    def bind_membership(self, coalition) -> None:
        """Bind every shard engine to ``coalition``'s membership epoch
        (see :meth:`AccessControlEngine.bind_membership`): decisions on
        all shards stamp their provenance with the epoch in force."""
        for shard in self._shards:
            with shard.lock:
                shard.engine.bind_membership(coalition)

    def rescind_server(self, server: str) -> int:
        """Propagate a coalition eviction to every shard: drop the
        evicted server's accesses from all incremental histories (see
        :meth:`AccessControlEngine.rescind_server`).  Session-to-shard
        routing is a stable hash of the owner, independent of coalition
        size, so membership changes never rebalance sessions — routes
        stay *pinned* and only the histories need repair."""
        removed = 0
        for shard in self._shards:
            with shard.lock:
                removed += shard.engine.rescind_server(server)
        return removed

    # -- cache + stats management ------------------------------------------------

    def prewarm(
        self, alphabet: Iterable[AccessKey | tuple[str, str, str]] = ()
    ) -> int:
        """Prewarm every shard.  The heavy work (constraint compilation,
        live-set fixpoints) happens once — the process-global caches are
        shared — and each shard only materialises its own entry table."""
        alphabet = tuple(alphabet)
        total = 0
        for shard in self._shards:
            with shard.lock:
                total += shard.engine.prewarm(alphabet)
        return total

    def invalidate_caches(self) -> None:
        for shard in self._shards:
            with shard.lock:
                shard.engine.invalidate_caches()

    def cache_stats(self) -> EngineCacheStats:
        """Engine counters summed across shards; the SRAC portion is the
        process-global snapshot (shared by all shards, counted once)."""
        totals = dict(
            candidate_hits=0,
            candidate_misses=0,
            extension_entries=0,
            live_hits=0,
            live_fallbacks=0,
            vector_decisions=0,
            vector_fallbacks=0,
        )
        for shard in self._shards:
            with shard.lock:
                stats = shard.engine.cache_stats()
            totals["candidate_hits"] += stats.candidate_hits
            totals["candidate_misses"] += stats.candidate_misses
            totals["extension_entries"] += stats.extension_entries
            totals["live_hits"] += stats.live_hits
            totals["live_fallbacks"] += stats.live_fallbacks
            totals["vector_decisions"] += stats.vector_decisions
            totals["vector_fallbacks"] += stats.vector_fallbacks
        return EngineCacheStats(srac=srac_cache_stats(), **totals)

    def shard_stats(self) -> list[dict[str, int]]:
        """Per-shard decision/grant/session counts (load-balance view),
        plus each shard engine's vectorized-sweep accounting — how many
        of the shard's decisions went through the batched path vs. the
        scalar fallback (the per-shard batching-efficacy view)."""
        out = []
        for shard in self._shards:
            with shard.lock:
                out.append(
                    {
                        "shard": shard.index,
                        "decisions": shard.decisions,
                        "granted": shard.granted,
                        "sessions": shard.engine.resident_sessions(),
                        # Engine counters are only mutated under this
                        # shard's lock, so reading them here is exact.
                        "vector_decisions": shard.engine._vector_decisions,
                        "vector_fallbacks": shard.engine._vector_fallbacks,
                    }
                )
        return out

    def reset_stats(self) -> None:
        """Zero shard throughput counters, every shard engine's hit/miss
        counters and the process-level SRAC counters — cache *contents*
        are kept, so benchmarks measure warm steady-state."""
        for shard in self._shards:
            with shard.lock:
                shard.decisions = 0
                shard.granted = 0
                shard.engine.reset_stats()
        reset_cache_stats()
