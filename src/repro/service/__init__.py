"""repro.service — the concurrent, sharded decision service.

Layers (bottom-up):

* :class:`~repro.service.sharding.ShardedEngine` — sessions partitioned
  across N :class:`~repro.rbac.engine.AccessControlEngine` shards by
  stable hash; process-global compiled-constraint and live-set caches
  shared by all shards.
* :class:`~repro.service.batching.ProofBatch` — coalesced,
  latency-model-aware cross-server execution-proof propagation with an
  explicit ``flush()``.
* :class:`~repro.service.service.DecisionService` — the front door:
  worker pool, per-shard bounded queues drained in adaptive
  micro-batches through the vectorized decision core
  (:mod:`repro.rbac.vector_engine`), throughput/latency/batching
  counters via ``service_stats()``.

See docs/architecture.md, "Concurrency & sharding".
"""

from repro.service.batching import ProofBatch
from repro.service.service import DecisionService, ServiceStats
from repro.service.sharding import ShardedEngine

__all__ = ["ShardedEngine", "ProofBatch", "DecisionService", "ServiceStats"]
