"""Random module-dependency digraphs and coalition topologies —
scaled-up versions of the Figure 1 workload.

:func:`random_module_graph` draws a random DAG (edges only point from
later to earlier modules in a random order, so acyclicity is by
construction), assigns modules to servers and synthesises deterministic
module payloads.  :func:`coalition_topology` builds coalitions with
star / ring / complete latency structures and optionally skewed clocks.
"""

from __future__ import annotations

import numpy as np

from repro.apps.integrity import DependencyGraph, ModuleSpec
from repro.coalition.clock import make_clocks
from repro.coalition.network import Coalition, uniform_latency
from repro.coalition.resource import Resource
from repro.coalition.server import CoalitionServer
from repro.errors import WorkloadError

__all__ = ["random_module_graph", "coalition_topology"]


def random_module_graph(
    n_modules: int,
    n_servers: int,
    edge_probability: float = 0.25,
    seed: int | None = None,
) -> DependencyGraph:
    """A random DAG of ``n_modules`` modules over ``n_servers`` servers.

    Module ``i`` may depend on any ``j < i`` with ``edge_probability``
    (ensuring acyclicity); servers are assigned uniformly.
    """
    if n_modules < 1 or n_servers < 1:
        raise WorkloadError("need at least one module and one server")
    if not 0.0 <= edge_probability <= 1.0:
        raise WorkloadError("edge probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    servers = [f"s{i + 1}" for i in range(n_servers)]
    modules: list[ModuleSpec] = []
    for index in range(n_modules):
        name = f"m{index + 1}"
        deps: list[str] = []
        if index:
            mask = rng.random(index) < edge_probability
            deps = [f"m{j + 1}" for j in np.nonzero(mask)[0]]
        modules.append(
            ModuleSpec(
                name=name,
                server=servers[int(rng.integers(n_servers))],
                content=f"module {name} payload {index}".encode(),
                depends_on=tuple(deps),
            )
        )
    return DependencyGraph(modules)


def coalition_topology(
    n_servers: int,
    shape: str = "complete",
    base_latency: float = 1.0,
    clock_skew: float = 0.0,
    clock_drift: float = 0.0,
    resources_per_server: int = 2,
    seed: int | None = None,
) -> Coalition:
    """A coalition with a parameterised latency structure.

    ``shape``:

    * ``"complete"`` — all pairs at ``base_latency``;
    * ``"star"`` — ``s1`` is the hub (spoke↔hub = ``base_latency``,
      spoke↔spoke = ``2·base_latency``);
    * ``"ring"`` — latency proportional to ring distance.
    """
    if n_servers < 1:
        raise WorkloadError("need at least one server")
    names = [f"s{i + 1}" for i in range(n_servers)]
    clocks = (
        make_clocks(n_servers, max_skew=clock_skew, max_drift=clock_drift, seed=seed)
        if clock_skew or clock_drift
        else [None] * n_servers
    )
    servers = [
        CoalitionServer(
            name,
            resources=[
                Resource(f"res{j + 1}") for j in range(resources_per_server)
            ],
            clock=clock,
        )
        for name, clock in zip(names, clocks)
    ]

    table: dict[tuple[str, str], float] = {}
    if shape == "complete":
        default = base_latency
    elif shape == "star":
        default = 2.0 * base_latency
        for name in names[1:]:
            table[(names[0], name)] = base_latency
    elif shape == "ring":
        default = base_latency  # overwritten for every pair below
        for i, a in enumerate(names):
            for j, b in enumerate(names):
                if i < j:
                    distance = min(j - i, n_servers - (j - i))
                    table[(a, b)] = base_latency * distance
    else:
        raise WorkloadError(f"unknown topology shape {shape!r}")
    return Coalition(servers, latency=uniform_latency(table, default=default))
