"""Synthetic workload generators for tests, examples and benchmarks.

Reproducible (numpy ``Generator``-seeded) sources of random SRAL
programs, regular trace models, SRAC constraints, module dependency
digraphs and coalition topologies.
"""

from repro.workloads.constraints import random_constraint, random_selection
from repro.workloads.digraphs import coalition_topology, random_module_graph
from repro.workloads.programs import (
    access_alphabet,
    random_access,
    random_program,
    random_regex,
)
from repro.workloads.scale import (
    ScaleSpec,
    ScaleWorkload,
    build_policy as build_scale_policy,
    build_workload as build_scale_workload,
)

__all__ = [
    "random_constraint",
    "random_selection",
    "ScaleSpec",
    "ScaleWorkload",
    "build_scale_policy",
    "build_scale_workload",
    "coalition_topology",
    "random_module_graph",
    "access_alphabet",
    "random_access",
    "random_program",
    "random_regex",
]
