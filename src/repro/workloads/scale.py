"""Million-session coalition workload for the scale benchmark.

EXP-SCALE drives the columnar session store
(:mod:`repro.rbac.session_store`) to coalition scale: hundreds of
servers, a session population in the millions, request traffic with
the two skews real fleets show —

* **Zipf popularity** over sessions: a small hot set produces most of
  the traffic while the long tail stays resident but quiet (exactly
  the population the columnar store is built to hold cheaply);
* **diurnal arrivals**: request times follow an inhomogeneous Poisson
  process whose rate swings sinusoidally over a simulated day, sampled
  by time-rescaling (homogeneous arrivals warped through the inverse
  cumulative intensity).

Arrival times are globally nondecreasing, so every session's own
request subsequence is monotone — each drained micro-batch is
vector-sweep eligible by construction, and any fallback the service
reports is attributable to the store, not the workload.

Everything is generated from one seeded :class:`numpy.random.Generator`
(vectorized; no per-request Python loop), so runs are reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.rbac.model import Permission
from repro.rbac.policy import Policy
from repro.srac.parser import parse_constraint
from repro.traces.trace import AccessKey

__all__ = ["ScaleSpec", "ScaleWorkload", "build_policy", "build_workload"]

#: Table-eligible SRAC constraints of the scale policy (small monitor
#: products — the store keeps one int64 state column per constraint).
COUNT_CONSTRAINT_SRC = "count(0, {bound}, [res = rsw])"
ORDER_CONSTRAINT_SRC = "exec rsw @ s0 >> exec rsw @ s1"


@dataclass(frozen=True)
class ScaleSpec:
    """Shape of one scale run (all fields have benchmark defaults)."""

    #: Resident session population.
    sessions: int = 1_000_000
    #: Distinct users the sessions belong to (sessions per user =
    #: ``sessions / users``; routing co-locates one user's sessions).
    users: int = 10_000
    #: Coalition servers: the access alphabet spans ``s0 .. s{n-1}``.
    servers: int = 200
    #: Requests in the generated stream.
    requests: int = 200_000
    #: Zipf exponent of the session-popularity skew (>1 = heavy head).
    zipf_s: float = 1.1
    #: Simulated-day length (logical seconds) of the diurnal cycle.
    day_s: float = 86_400.0
    #: Relative amplitude of the diurnal rate swing (0 = flat Poisson).
    diurnal_amplitude: float = 0.6
    #: Streams span roughly this many simulated days.
    days: float = 1.0
    #: Upper bound of the counting constraint (``count(0, bound, ...)``)
    #: — tiny bounds force spatial denials, the verification shape.
    count_bound: int = 200
    seed: int = 2026


@dataclass
class ScaleWorkload:
    """A fully materialised request stream over a session population."""

    spec: ScaleSpec
    #: ``user_names[i]`` owns session ``i`` (the bulk-open order).
    user_names: list[str]
    #: Nondecreasing request instants (inhomogeneous Poisson samples).
    times: np.ndarray
    #: ``session_index[k]`` is the Zipf-drawn target of request ``k``.
    session_index: np.ndarray
    #: Interned request accesses, aligned with ``times``.
    accesses: list[AccessKey] = field(repr=False)

    @property
    def alphabet(self) -> list[AccessKey]:
        """The distinct accesses the stream draws from (prewarm set)."""
        seen: dict[AccessKey, None] = {}
        for access in self.accesses:
            seen.setdefault(access)
        return list(seen)


def build_policy(spec: ScaleSpec) -> Policy:
    """The scale policy: one role over three permissions — two gated
    by table-eligible SRAC constraints, with mixed finite/infinite
    validity durations (finite budgets keep tracker expiry arithmetic
    on the hot path; the unconstrained permission is the cheap-grant
    floor)."""
    policy = Policy()
    policy.add_role("agent")
    policy.add_permission(
        Permission(
            "exec-rsw",
            op="exec",
            resource="rsw",
            spatial_constraint=parse_constraint(
                COUNT_CONSTRAINT_SRC.format(bound=spec.count_bound)
            ),
            validity_duration=4.0 * spec.day_s,
        )
    )
    policy.add_permission(
        Permission(
            "read-rsw",
            op="read",
            resource="rsw",
            spatial_constraint=parse_constraint(ORDER_CONSTRAINT_SRC),
            validity_duration=math.inf,
        )
    )
    policy.add_permission(
        Permission("write-log", op="write", resource="log")
    )
    for i in range(spec.users):
        name = f"u{i:05d}"
        policy.add_user(name)
        policy.assign_user(name, "agent")
    policy.assign_permission("agent", "exec-rsw")
    policy.assign_permission("agent", "read-rsw")
    policy.assign_permission("agent", "write-log")
    return policy


def _diurnal_times(spec: ScaleSpec, rng: np.random.Generator) -> np.ndarray:
    """Arrival instants of an inhomogeneous Poisson process with rate
    ``lam(t) = base * (1 + A * sin(2*pi*t/day))`` via time-rescaling:
    draw homogeneous unit-rate arrivals, then warp them through the
    inverse cumulative intensity (tabulated on a dense grid)."""
    horizon = spec.days * spec.day_s
    # Unit-mean gaps -> homogeneous arrivals on [0, n); scale to the
    # cumulative intensity over the horizon so the stream spans it.
    gaps = rng.exponential(1.0, size=spec.requests)
    homogeneous = np.cumsum(gaps)
    homogeneous *= spec.requests / homogeneous[-1]
    grid = np.linspace(0.0, horizon, 4096)
    amplitude = spec.diurnal_amplitude
    omega = 2.0 * math.pi / spec.day_s
    # Closed-form integral of the (unnormalised) rate profile.
    cumulative = grid + (amplitude / omega) * (1.0 - np.cos(omega * grid))
    cumulative *= spec.requests / cumulative[-1]
    times = np.interp(homogeneous, cumulative, grid)
    # Strictly increasing instants: equal-time requests to one session
    # are legal but needlessly stress float-equality paths.
    np.maximum.accumulate(times, out=times)
    times += np.arange(spec.requests) * 1e-7
    return times


def _zipf_sessions(spec: ScaleSpec, rng: np.random.Generator) -> np.ndarray:
    """Zipf-skewed session targets: rank ``r`` has weight ``1/r**s``,
    drawn by inverse-CDF over the precomputed cumulative weights, then
    shuffled through a random rank->session permutation so the hot set
    is scattered across shards."""
    ranks = np.arange(1, spec.sessions + 1, dtype=np.float64)
    weights = ranks ** -spec.zipf_s
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(spec.requests)
    picked = np.searchsorted(cdf, draws, side="left")
    permutation = rng.permutation(spec.sessions)
    return permutation[picked].astype(np.int64)


def build_workload(spec: ScaleSpec) -> ScaleWorkload:
    """Generate the full reproducible stream for ``spec``."""
    if spec.sessions < 1 or spec.users < 1 or spec.requests < 1:
        raise ValueError(f"degenerate scale spec: {spec}")
    rng = np.random.default_rng(spec.seed)
    user_names = [f"u{i % spec.users:05d}" for i in range(spec.sessions)]
    times = _diurnal_times(spec, rng)
    session_index = _zipf_sessions(spec, rng)
    # Request mix: mostly the SRAC-gated permissions (monitor steps on
    # the hot path), a write floor, spread across the server fleet.
    ops = rng.integers(0, 3, size=spec.requests)
    servers = rng.integers(0, spec.servers, size=spec.requests)
    # The ordered constraint watches s0/s1 only; bias a slice of the
    # exec/read traffic onto them so its monitor actually advances.
    watched = rng.random(spec.requests) < 0.2
    servers[watched] = rng.integers(0, 2, size=int(watched.sum()))
    kinds = (
        AccessKey.of("exec", "rsw", ""),
        AccessKey.of("read", "rsw", ""),
        AccessKey.of("write", "log", ""),
    )
    accesses = [
        AccessKey.of(kinds[op].op, kinds[op].resource, f"s{srv}")
        for op, srv in zip(ops.tolist(), servers.tolist())
    ]
    return ScaleWorkload(
        spec=spec,
        user_names=user_names,
        times=times,
        session_index=session_index,
        accesses=accesses,
    )
