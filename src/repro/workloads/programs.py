"""Random SRAL programs and regular trace models, sized for scaling
studies.

The benchmarks (Theorem 3.1 / 3.2 experiments) need programs of a
*controllable size m*: :func:`random_program` builds a program with a
requested number of AST leaves over a parameterised access alphabet;
:func:`random_regex` does the same for regular trace models.
All generation is driven by a ``numpy.random.Generator`` so runs are
reproducible under a fixed seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    If,
    IntLit,
    Par,
    Program,
    Seq,
    Skip,
    Var,
    While,
)
from repro.traces.regular import Alt, Cat, Eps, Regex, Star, Sym
from repro.traces.trace import AccessKey

__all__ = ["access_alphabet", "random_access", "random_program", "random_regex"]


def access_alphabet(
    n_ops: int = 3, n_resources: int = 4, n_servers: int = 3
) -> tuple[AccessKey, ...]:
    """A deterministic access alphabet of the requested dimensions."""
    if min(n_ops, n_resources, n_servers) < 1:
        raise WorkloadError("alphabet dimensions must be positive")
    ops = [f"op{i}" for i in range(n_ops)]
    resources = [f"r{i}" for i in range(n_resources)]
    servers = [f"s{i}" for i in range(n_servers)]
    return tuple(
        AccessKey(o, r, s) for o in ops for r in resources for s in servers
    )


def random_access(
    rng: np.random.Generator, alphabet: Sequence[AccessKey]
) -> AccessKey:
    """One uniformly random access from the alphabet."""
    return alphabet[int(rng.integers(len(alphabet)))]


def random_program(
    rng: np.random.Generator,
    leaves: int,
    alphabet: Sequence[AccessKey] | None = None,
    p_par: float = 0.15,
    p_if: float = 0.25,
    p_while: float = 0.15,
) -> Program:
    """A random program with ``leaves`` access leaves.

    Composition probabilities: with ``p_par``/``p_if``/``p_while`` the
    split point becomes a ``||`` / ``if`` / ``while`` node, otherwise a
    ``;``.  ``while`` wraps the whole left part (loops nest naturally).
    Size in AST nodes is ``Θ(leaves)``, the *m* of Theorem 3.2.
    """
    if leaves < 1:
        raise WorkloadError("program must have at least one leaf")
    if alphabet is None:
        alphabet = access_alphabet()

    def leaf() -> Program:
        key = random_access(rng, alphabet)
        return Access(key.op, key.resource, key.server)

    def build(count: int) -> Program:
        if count == 1:
            return leaf()
        split = int(rng.integers(1, count))
        roll = rng.random()
        left, right = build(split), build(count - split)
        if roll < p_par:
            return Par(left, right)
        if roll < p_par + p_if:
            return If(_fresh_cond(rng), left, right)
        if roll < p_par + p_if + p_while:
            return Seq(While(_fresh_cond(rng), left), right)
        return Seq(left, right)

    return build(leaves)


def _fresh_cond(rng: np.random.Generator) -> BinOp:
    # Opaque conditions (trace semantics ignores them); vary the bound so
    # structurally distinct programs don't collapse under hashing.
    return BinOp("<", Var("x"), IntLit(int(rng.integers(0, 1000))))


def random_regex(
    rng: np.random.Generator,
    leaves: int,
    alphabet: Sequence[AccessKey] | None = None,
    p_alt: float = 0.35,
    p_star: float = 0.2,
) -> Regex:
    """A random regular trace model with ``leaves`` symbol leaves."""
    if leaves < 1:
        raise WorkloadError("regex must have at least one leaf")
    if alphabet is None:
        alphabet = access_alphabet()

    def build(count: int) -> Regex:
        if count == 1:
            if rng.random() < 0.05:
                return Eps()
            return Sym(random_access(rng, alphabet))
        split = int(rng.integers(1, count))
        roll = rng.random()
        left, right = build(split), build(count - split)
        if roll < p_alt:
            return Alt(left, right)
        if roll < p_alt + p_star:
            return Cat(Star(left), right)
        return Cat(left, right)

    return build(leaves)
