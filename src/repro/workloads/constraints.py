"""Random SRAC constraints, sized for the Theorem 3.2 scaling study.

:func:`random_constraint` builds a constraint with a requested number
of atomic leaves over a given access alphabet.  Leaves are drawn from
the paper's atomic forms (atoms, ordered pairs, counting constraints
over field selections); internal nodes from the boolean connectives.
A ``positive_only`` switch omits negation/implication, giving the
well-behaved fragment whose product configurations stay small.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.srac.ast import And, Atom, Constraint, Count, Implies, Not, Or, Ordered
from repro.srac.selection import SelectField, Selection
from repro.traces.trace import AccessKey
from repro.workloads.programs import random_access

__all__ = ["random_constraint", "random_selection"]


def random_selection(
    rng: np.random.Generator, alphabet: Sequence[AccessKey]
) -> Selection:
    """A random single-field selection drawn from the alphabet's values."""
    field = ("op", "resource", "server")[int(rng.integers(3))]
    values = sorted({getattr(a, field) for a in alphabet})
    size = int(rng.integers(1, min(len(values), 3) + 1))
    chosen = rng.choice(len(values), size=size, replace=False)
    return SelectField(field, frozenset(values[i] for i in chosen))


def random_constraint(
    rng: np.random.Generator,
    leaves: int,
    alphabet: Sequence[AccessKey] | None = None,
    max_count: int = 6,
    positive_only: bool = True,
) -> Constraint:
    """A random constraint with ``leaves`` atomic parts.

    Size in AST nodes is ``Θ(leaves)``, the *n* of Theorem 3.2.
    """
    if leaves < 1:
        raise WorkloadError("constraint must have at least one leaf")
    if alphabet is None:
        from repro.workloads.programs import access_alphabet

        alphabet = access_alphabet()

    def leaf() -> Constraint:
        roll = rng.random()
        if roll < 0.4:
            return Atom(random_access(rng, alphabet))
        if roll < 0.7:
            return Ordered(random_access(rng, alphabet), random_access(rng, alphabet))
        lo = int(rng.integers(0, max_count))
        hi = None if rng.random() < 0.3 else int(rng.integers(lo, max_count + 1))
        return Count(lo, hi, random_selection(rng, alphabet))

    def build(count: int) -> Constraint:
        if count == 1:
            return leaf()
        split = int(rng.integers(1, count))
        left, right = build(split), build(count - split)
        roll = rng.random()
        if positive_only:
            return And(left, right) if roll < 0.6 else Or(left, right)
        if roll < 0.4:
            return And(left, right)
        if roll < 0.7:
            return Or(left, right)
        if roll < 0.85:
            return Implies(left, right)
        return And(Not(left), right)

    return build(leaves)
