"""Security managers: the interposition point for coordinated access
control (paper Section 5.2).

Every resource access an agent attempts funnels through
``check_permission`` before the server executes it — the role the Java
``SecurityManager`` plays in Naplet.  :class:`NapletSecurityManager`
performs the full pipeline:

1. authenticate the agent's owner certificate with the coalition
   authority and establish an RBAC session (first arrival only);
2. activate the agent's requested roles;
3. on each access, call the spatial and temporal constraint checkers
   through the :class:`~repro.rbac.engine.AccessControlEngine`
   (``spatialConsCheck`` / ``temporalConsCheck`` in the paper's code
   sketch);
4. notify the engine of migrations so per-server validity budgets
   reset under Scheme A.

:class:`PermissiveSecurityManager` grants everything (for substrate
tests and un-secured simulations).
"""

from __future__ import annotations

import threading

from repro.agent.naplet import Naplet
from repro.agent.principal import Authority
from repro.errors import AuthenticationError
from repro.rbac.audit import Decision
from repro.rbac.engine import AccessControlEngine, Session
from repro.sral.analysis import alphabet as program_alphabet
from repro.sral.ast import Program
from repro.srac.checker import check_program
from repro.traces.trace import AccessKey

__all__ = ["SecurityManager", "PermissiveSecurityManager", "NapletSecurityManager"]


class SecurityManager:
    """Interface the scheduler calls around agent life-cycle events."""

    def on_first_arrival(self, naplet: Naplet, server: str, t: float) -> None:
        """Authenticate and set up sessions.  Raises
        :class:`~repro.errors.AuthenticationError` to reject the agent."""

    def on_migration(self, naplet: Naplet, server: str, t: float) -> None:
        """The agent arrived at a further server."""

    def check_permission(
        self,
        naplet: Naplet,
        access: AccessKey,
        t: float,
        program: Program | None = None,
    ) -> Decision | None:
        """Authorize one access; raise
        :class:`~repro.errors.AccessDenied` to deny.  May return the
        decision for auditing."""
        return None

    def on_access_executed(self, naplet: Naplet, access: AccessKey, t: float) -> None:
        """The server executed ``access`` and issued a proof (called by
        the scheduler after success)."""

    def on_membership_change(self, kind: str, servers: tuple[str, ...]) -> None:
        """The coalition's membership changed (called by the scheduler
        after applying a churn event)."""


class PermissiveSecurityManager(SecurityManager):
    """Grants every access (no RBAC engine attached)."""


class NapletSecurityManager(SecurityManager):
    """The paper's extended security manager wired to the RBAC engine.

    Parameters
    ----------
    engine:
        The coordinated access-control engine — either a plain
        :class:`~repro.rbac.engine.AccessControlEngine` or a
        :class:`~repro.service.sharding.ShardedEngine` (the sharded
        engine mirrors the decision API, so the manager is agnostic;
        with sharding, each agent's session routes to its owner's
        shard).  The agent-id → session map is lock-guarded so one
        manager instance can serve concurrent arrivals in service mode.
    authority:
        Certificate authority for owner authentication.  ``None``
        disables certificate checks (a priori registration assumed).
    admission_check:
        When true, an agent whose *whole program* cannot satisfy some
        matching permission's spatial constraint is rejected at first
        arrival ("constraint satisfaction checking at run-time right
        after a mobile object is authenticated", Section 3.3) rather
        than failing midway.
    incremental:
        When true, checks use the engine's per-session monitor cache
        (``history=None``) instead of replaying the agent's full proof
        chain on every access — same decisions, O(1) in history length.
    typecheck:
        When true, the agent's program is statically type-checked at
        first arrival (seeded with the types of its dispatch
        environment); ill-typed programs are rejected before running.
    coalition:
        Optional :class:`~repro.coalition.Coalition` binding for
        dynamic membership: decisions are stamped with the membership
        epoch, explicit histories are filtered down to admissible
        issuers (:meth:`~repro.coalition.Coalition.admissible_trace`),
        and — in incremental mode — an eviction rescinds the evicted
        server's observations from the engine, so no decision is ever
        justified by a proof from a server evicted in an earlier epoch.
    """

    def __init__(
        self,
        engine: AccessControlEngine,
        authority: Authority | None = None,
        admission_check: bool = False,
        incremental: bool = False,
        typecheck: bool = False,
        coalition=None,
    ):
        self.engine = engine
        self.authority = authority
        self.admission_check = admission_check
        self.incremental = incremental
        self.typecheck = typecheck
        self.coalition = coalition
        if coalition is not None and hasattr(engine, "bind_membership"):
            engine.bind_membership(coalition)
        self._sessions: dict[str, Session] = {}
        self._sessions_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def session_of(self, naplet: Naplet) -> Session:
        with self._sessions_lock:
            session = self._sessions.get(naplet.naplet_id)
        if session is None:
            raise AuthenticationError(
                f"agent {naplet.naplet_id!r} has no established session"
            )
        return session

    def on_first_arrival(self, naplet: Naplet, server: str, t: float) -> None:
        principals: frozenset[str] = frozenset()
        if self.authority is not None:
            if naplet.certificate is None:
                raise AuthenticationError(
                    f"agent {naplet.naplet_id!r} carries no certificate"
                )
            principals = self.authority.authenticate(naplet.certificate)
        if self.typecheck:
            self._typecheck(naplet)
        session = self.engine.authenticate(naplet.owner, t, principals)
        with self._sessions_lock:
            self._sessions[naplet.naplet_id] = session
        for role in naplet.roles:
            self.engine.activate_role(session, role, t)
        if self.admission_check:
            self._admit(naplet, session)

    @staticmethod
    def _typecheck(naplet: Naplet) -> None:
        from repro.sral.typecheck import BOOL, INT, STR, SralTypeError, typecheck_program

        seed: dict[str, str] = {}
        for name, value in naplet.env.items():
            if isinstance(value, bool):
                seed[name] = BOOL
            elif isinstance(value, int):
                seed[name] = INT
            elif isinstance(value, str):
                seed[name] = STR
        try:
            typecheck_program(naplet.program, env=seed)
        except SralTypeError as error:
            raise AuthenticationError(
                f"agent {naplet.naplet_id!r} rejected: program fails static "
                f"type checking ({error})"
            ) from error

    def _admit(self, naplet: Naplet, session: Session) -> None:
        permissions = self.engine.policy.permissions_of_roles(
            self.engine.policy.hierarchy.closure(session.active_roles)
        )
        accesses = program_alphabet(naplet.program)
        for permission in sorted(permissions, key=lambda p: p.name):
            if permission.spatial_constraint is None:
                continue
            if not any(permission.matches(a) for a in accesses):
                continue
            if not check_program(
                naplet.program, permission.spatial_constraint, mode="exists"
            ):
                raise AuthenticationError(
                    f"agent {naplet.naplet_id!r} rejected at admission: its "
                    f"program cannot satisfy the spatial constraint of "
                    f"permission {permission.name!r}"
                )

    def on_migration(self, naplet: Naplet, server: str, t: float) -> None:
        self.engine.notify_migration(self.session_of(naplet), t)

    # -- per-access check --------------------------------------------------------

    def check_permission(
        self,
        naplet: Naplet,
        access: AccessKey,
        t: float,
        program: Program | None = None,
    ) -> Decision:
        """The paper's ``checkPermission``: spatial + temporal checks
        through the engine; raises :class:`~repro.errors.AccessDenied`
        on denial."""
        session = self.session_of(naplet)
        if self.incremental:
            history = None
        else:
            history = naplet.history()
            if self.coalition is not None:
                # Dynamic membership: proofs issued at evicted servers
                # are inadmissible — the spatial check must not see them.
                history = self.coalition.admissible_trace(history)
        return self.engine.enforce(
            session,
            access,
            t,
            history=history,
            program=program,
        )

    def on_access_executed(self, naplet: Naplet, access: AccessKey, t: float) -> None:
        """Keep the engine's incremental monitor cache in sync with the
        proofs the agent accumulates."""
        if self.incremental:
            self.engine.observe(self.session_of(naplet), access)

    def on_membership_change(self, kind: str, servers: tuple[str, ...]) -> None:
        """Apply a membership change to the engine: an eviction drops
        the evicted server's accesses from every incremental history
        (explicit-history checks are filtered per decision by
        ``admissible_trace`` instead)."""
        if kind == "evict" and self.incremental:
            rescind = getattr(self.engine, "rescind_server", None)
            if rescind is not None:
                for name in servers:
                    rescind(name)
