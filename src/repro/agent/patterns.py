"""Naplet access-pattern constructs (paper Section 5.2).

"The SRAL prototype has been implemented in recursively constructed
resource access patterns.  Its base is a Singleton pattern, comprising
of a single shared resource access at a server guarded by a
pre-condition.  Over the set of access patterns, we define three
composite operators: SeqPattern and ParPattern, and Loop."

Each pattern compiles to a SRAL :class:`~repro.sral.ast.Program` via
:meth:`AccessPattern.to_program`, so the whole SRAL toolchain (trace
models, constraint checking, interpretation) applies to
pattern-constructed programs.  Guards are SRAL boolean expressions
evaluated against the naplet's variable environment at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import AgentError
from repro.sral.ast import (
    Access,
    BoolLit,
    Expr,
    If,
    Program,
    Skip,
    While,
    par,
    seq,
)

__all__ = ["AccessPattern", "SingletonPattern", "SeqPattern", "ParPattern", "LoopPattern"]


@dataclass(frozen=True)
class AccessPattern:
    """Base class of Naplet access patterns."""

    def to_program(self) -> Program:
        """Compile the pattern to an SRAL program."""
        raise NotImplementedError


@dataclass(frozen=True)
class SingletonPattern(AccessPattern):
    """A single guarded access: ``if guard then (op r @ s)``.

    ``guard`` defaults to ``true`` (the unguarded access).  This is the
    paper's base pattern, with the ``Checkable`` guardian realised as an
    SRAL pre-condition.
    """

    op: str
    resource: str
    server: str
    guard: Expr = BoolLit(True)

    def to_program(self) -> Program:
        access = Access(self.op, self.resource, self.server)
        if self.guard == BoolLit(True):
            return access
        return If(self.guard, access, Skip())


@dataclass(frozen=True)
class SeqPattern(AccessPattern):
    """Sequential composition ``p1 ; p2 ; …``."""

    parts: tuple[AccessPattern, ...]

    def __init__(self, *parts: AccessPattern | Sequence[AccessPattern]):
        flattened: list[AccessPattern] = []
        for part in parts:
            if isinstance(part, AccessPattern):
                flattened.append(part)
            else:
                flattened.extend(part)
        if not flattened:
            raise AgentError("SeqPattern needs at least one sub-pattern")
        object.__setattr__(self, "parts", tuple(flattened))

    def to_program(self) -> Program:
        return seq(*(p.to_program() for p in self.parts))


@dataclass(frozen=True)
class ParPattern(AccessPattern):
    """Concurrent composition ``p1 || p2 || …`` — executed by cloned
    naplets as in the paper's ``ApplAgentProg`` example."""

    parts: tuple[AccessPattern, ...]

    def __init__(self, *parts: AccessPattern | Sequence[AccessPattern]):
        flattened: list[AccessPattern] = []
        for part in parts:
            if isinstance(part, AccessPattern):
                flattened.append(part)
            else:
                flattened.extend(part)
        if not flattened:
            raise AgentError("ParPattern needs at least one sub-pattern")
        object.__setattr__(self, "parts", tuple(flattened))

    def to_program(self) -> Program:
        return par(*(p.to_program() for p in self.parts))


@dataclass(frozen=True)
class LoopPattern(AccessPattern):
    """Repeat a pattern while a pre-condition holds."""

    cond: Expr
    body: AccessPattern

    def to_program(self) -> Program:
        return While(self.cond, self.body.to_program())
