"""The Naplet: a first-class mobile object.

"Naplet-based mobile distributed systems are built upon a first-class
Naplet object … defining hooks for application-specific functions to be
performed in different stages of its life cycle in each server and an
itinerary for its way of travelling among the servers" (Section 5).

A :class:`Naplet` bundles the agent's identity and owner certificate,
its SRAL program (or an access pattern that compiles to one), its
variable environment, its itinerary plan, its proof registry (the
carried, hash-chained access history) and life-cycle hooks.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Mapping

from repro.agent.itinerary import Itinerary, plan_of_program
from repro.agent.patterns import AccessPattern
from repro.agent.principal import Certificate
from repro.coalition.proofs import ProofRegistry
from repro.errors import AgentError
from repro.sral.ast import Program
from repro.traces.trace import Trace

__all__ = ["Naplet", "NapletStatus", "LifecycleHooks"]

_naplet_counter = itertools.count(1)


class NapletStatus(enum.Enum):
    """Life-cycle states of an agent in the simulation."""

    CREATED = "created"
    RUNNING = "running"
    BLOCKED = "blocked"
    MIGRATING = "migrating"
    FINISHED = "finished"
    DENIED = "denied"
    FAILED = "failed"


class LifecycleHooks:
    """Application hooks called at life-cycle stages (the Naplet
    ``onArrival``/``onDeparture`` style callbacks).  All optional."""

    def __init__(
        self,
        on_arrival: Callable[["Naplet", str, float], None] | None = None,
        on_departure: Callable[["Naplet", str, float], None] | None = None,
        on_finish: Callable[["Naplet", float], None] | None = None,
        on_denied: Callable[["Naplet", object, float], None] | None = None,
    ):
        self.on_arrival = on_arrival
        self.on_departure = on_departure
        self.on_finish = on_finish
        self.on_denied = on_denied


class Naplet:
    """A mobile software agent emulating a roaming mobile device."""

    def __init__(
        self,
        owner: str,
        program: Program | AccessPattern,
        certificate: Certificate | None = None,
        itinerary: Itinerary | None = None,
        env: Mapping[str, Any] | None = None,
        name: str | None = None,
        hooks: LifecycleHooks | None = None,
        roles: tuple[str, ...] = (),
    ):
        if not owner:
            raise AgentError("naplet owner must be non-empty")
        if isinstance(program, AccessPattern):
            program = program.to_program()
        if not isinstance(program, Program):
            raise AgentError(f"not an SRAL program or pattern: {program!r}")
        self.naplet_id = name or f"naplet-{next(_naplet_counter)}"
        self.owner = owner
        self.certificate = certificate
        self.program = program
        self.itinerary = itinerary if itinerary is not None else plan_of_program(program)
        self.env: dict[str, Any] = dict(env or {})
        self.hooks = hooks or LifecycleHooks()
        self.roles = tuple(roles)

        self.registry = ProofRegistry(self.naplet_id)
        self.status = NapletStatus.CREATED
        self.location: str | None = None
        self.denials: list[object] = []
        self.error: Exception | None = None
        self.finish_time: float | None = None
        #: Values returned by executed accesses, in execution order —
        #: e.g. the module digests a Section 6 integrity auditor collects.
        self.observations: list[tuple[Any, Any]] = []

    # -- derived views ------------------------------------------------------

    def history(self) -> Trace:
        """The proved access history the agent carries."""
        return self.registry.trace()

    def clone(self, program: Program, suffix: str) -> "Naplet":
        """A child agent sharing owner/certificate/roles but with its own
        environment copy and empty history — the paper's cloned naplets
        for ``ParPattern``."""
        child = Naplet(
            owner=self.owner,
            program=program,
            certificate=self.certificate,
            env=dict(self.env),
            name=f"{self.naplet_id}/{suffix}",
            roles=self.roles,
        )
        child.location = self.location
        return child

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Naplet({self.naplet_id!r}, owner={self.owner!r}, "
            f"status={self.status.value}, at={self.location!r})"
        )
