"""Structured agent itineraries.

"We can use the agent itinerary to describe the roaming agenda of a
mobile device, i.e. the list of servers to be visited and their
ordering" (Section 5).  Naplet's navigation facility is structured, so
itineraries compose: a sequence of stops, a loop over a sub-itinerary,
and an alternative chosen at runtime.

An itinerary is a *plan*; the scheduler also migrates implicitly when a
program accesses a resource on another server.  :func:`plan_of_program`
derives the minimal itinerary from a program's accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import AgentError
from repro.sral.ast import Access, Program, walk

__all__ = [
    "Itinerary",
    "SeqItinerary",
    "LoopItinerary",
    "AltItinerary",
    "plan_of_program",
]


@dataclass(frozen=True)
class Itinerary:
    """Base class of itineraries."""

    def stops(self) -> Iterator[str]:
        """The server names in visiting order (alternatives yield their
        primary branch)."""
        raise NotImplementedError

    def servers(self) -> frozenset[str]:
        """All servers this itinerary may visit."""
        return frozenset(self.stops())

    def __iter__(self) -> Iterator[str]:
        return self.stops()


@dataclass(frozen=True)
class SeqItinerary(Itinerary):
    """Visit the given servers in order."""

    servers_in_order: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "servers_in_order", tuple(self.servers_in_order))
        if not all(self.servers_in_order):
            raise AgentError("itinerary stops must be non-empty names")

    def stops(self) -> Iterator[str]:
        return iter(self.servers_in_order)


@dataclass(frozen=True)
class LoopItinerary(Itinerary):
    """Repeat a sub-itinerary a fixed number of times."""

    inner: Itinerary
    times: int

    def __post_init__(self) -> None:
        if self.times < 0:
            raise AgentError("loop count must be non-negative")

    def stops(self) -> Iterator[str]:
        for _ in range(self.times):
            yield from self.inner.stops()

    def servers(self) -> frozenset[str]:
        return self.inner.servers()


@dataclass(frozen=True)
class AltItinerary(Itinerary):
    """Visit one of two sub-itineraries; ``stops`` follows the primary
    branch, ``servers`` covers both (the static over-approximation)."""

    primary: Itinerary
    alternative: Itinerary

    def stops(self) -> Iterator[str]:
        return self.primary.stops()

    def servers(self) -> frozenset[str]:
        return self.primary.servers() | self.alternative.servers()


def plan_of_program(program: Program) -> SeqItinerary:
    """The itinerary implied by a program: servers in first-access
    order, deduplicated (consecutive repeats collapse)."""
    stops: list[str] = []
    for node in walk(program):
        if isinstance(node, Access) and (not stops or stops[-1] != node.server):
            stops.append(node.server)
    return SeqItinerary(tuple(stops))
