"""Discrete-event simulation of mobile agents roaming a coalition.

This is the emulation substrate the paper builds with the Naplet Java
system, reduced to its essentials: agents are cooperative coroutines
(the SRAL interpreter's request generators), the scheduler owns a
virtual global clock and an event heap, and every effect — resource
access, migration with latency, channel I/O, signal synchronisation,
cloning for ``||`` — is an event.

Key behaviours:

* **Implicit migration** — an access ``op r @ s`` from an agent located
  elsewhere first migrates the agent to ``s`` (taking the coalition's
  latency), then performs the access.  The itinerary thus *emerges*
  from the program, as in the paper's model where computation "spreads
  across several hosting sites".
* **Security interposition** — on first arrival the agent is
  authenticated (certificate + RBAC session + role activation); every
  access then passes ``check_permission`` (spatial + temporal
  constraint checks); migrations notify the engine so per-server
  validity budgets reset under Scheme A.
* **Cloned parallelism** — ``p1 || p2`` spawns child agents with copies
  of the environment (the paper's ``ApplAgentProg`` cloned naplets);
  the parent resumes when all clones finish.
* **Blocking semantics** — ``ch ? x`` blocks on empty channels,
  ``wait(ξ)`` blocks until ``signal(ξ)``; wake-ups re-attempt the
  operation, so racing receivers are handled correctly.  If the event
  heap drains while agents are still blocked, the simulation reports a
  deadlock.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Literal

from repro.agent.interpreter import (
    DoAccess,
    DoReceive,
    DoSend,
    DoSignal,
    DoSpawn,
    DoWait,
    Request,
    interpret,
)
from repro.agent.naplet import Naplet, NapletStatus
from repro.agent.security import PermissiveSecurityManager, SecurityManager
from repro.coalition.channels import EMPTY
from repro.coalition.network import Coalition
from repro.errors import (
    AccessDenied,
    AgentError,
    AuthenticationError,
    CoalitionError,
    RbacError,
    SimulationError,
)
from repro.traces.trace import AccessKey

__all__ = ["Simulation", "SimulationReport"]

DeniedPolicy = Literal["abort", "skip"]


@dataclass
class _Task:
    """Scheduler-side state of one agent coroutine."""

    naplet: Naplet
    generator: Any
    inbox: Any = None  # value to send into the generator on resume
    pending: Request | None = None  # request to re-attempt on resume
    parent: "_Task | None" = None
    children_remaining: int = 0
    started: bool = False
    migrating_to: str | None = None  # destination of an in-flight migration


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of a simulation run."""

    end_time: float
    events_processed: int
    naplets: tuple[Naplet, ...]
    deadlocked: tuple[str, ...]

    def by_id(self, naplet_id: str) -> Naplet:
        for naplet in self.naplets:
            if naplet.naplet_id == naplet_id:
                return naplet
        raise SimulationError(f"no naplet {naplet_id!r} in report")

    def statuses(self) -> dict[str, str]:
        return {n.naplet_id: n.status.value for n in self.naplets}

    def all_finished(self) -> bool:
        return all(n.status is NapletStatus.FINISHED for n in self.naplets)


class Simulation:
    """A coalition-wide discrete-event simulation.

    Parameters
    ----------
    coalition:
        Servers, latency model, channels, signals.
    security:
        The security manager interposed on every access (default:
        permissive).
    access_cost:
        Virtual time one access takes (or a callable
        ``(AccessKey) -> float``).
    on_denied:
        ``"abort"`` — a denied access terminates the agent with status
        ``DENIED`` (the paper's ``SecurityException``); ``"skip"`` — the
        denial is recorded and the program continues (the access is not
        performed).
    proof_propagation:
        ``None`` (default) — proofs live only in each object's carried
        registry, the paper's baseline.  ``"eager"`` — every executed
        access is announced to every other server immediately (one
        delivery call per access per destination).  ``"batched"`` —
        announcements coalesce in a
        :class:`~repro.service.batching.ProofBatch` and flush when
        their migration-latency window elapses (or on overflow /
        end-of-run), modelling the service's batched propagation.
        Either mode freezes the coalition's membership.  The batcher is
        exposed as :attr:`proof_batch` for stats and explicit flushes.
    proof_batch_size:
        Overflow threshold of the batched mode.
    """

    def __init__(
        self,
        coalition: Coalition,
        security: SecurityManager | None = None,
        access_cost: float | Callable[[AccessKey], float] = 1.0,
        on_denied: DeniedPolicy = "abort",
        max_loop_iterations: int = 100_000,
        proof_propagation: Literal["eager", "batched"] | None = None,
        proof_batch_size: int = 32,
    ):
        if on_denied not in ("abort", "skip"):
            raise SimulationError(f"unknown on_denied policy {on_denied!r}")
        self.coalition = coalition
        self.security = security if security is not None else PermissiveSecurityManager()
        self._access_cost = access_cost
        self.on_denied: DeniedPolicy = on_denied
        self.max_loop_iterations = max_loop_iterations
        if proof_propagation not in (None, "eager", "batched"):
            raise SimulationError(
                f"unknown proof_propagation mode {proof_propagation!r}"
            )
        self.proof_propagation = proof_propagation
        self.proof_batch = None
        if proof_propagation is not None:
            # Imported here so the agent layer has no hard dependency
            # on the service layer when propagation is not requested.
            from repro.service.batching import ProofBatch

            self.proof_batch = ProofBatch(coalition, max_batch=proof_batch_size)

        self._tasks: dict[str, _Task] = {}
        self._heap: list[tuple[float, int, str]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events = 0

    # -- setup -------------------------------------------------------------

    def add_naplet(
        self, naplet: Naplet, start_server: str, at: float = 0.0
    ) -> None:
        """Dispatch ``naplet`` to ``start_server`` at time ``at``."""
        if naplet.naplet_id in self._tasks:
            raise SimulationError(f"duplicate naplet {naplet.naplet_id!r}")
        if start_server not in self.coalition:
            raise SimulationError(f"unknown start server {start_server!r}")
        naplet.location = start_server
        task = _Task(
            naplet=naplet,
            generator=interpret(
                naplet.program, naplet.env, self.max_loop_iterations
            ),
        )
        self._tasks[naplet.naplet_id] = task
        self._schedule(at, naplet.naplet_id)

    # -- event plumbing -------------------------------------------------------

    def _schedule(self, t: float, task_id: str) -> None:
        heapq.heappush(self._heap, (t, next(self._counter), task_id))

    def _cost_of(self, access: AccessKey) -> float:
        if callable(self._access_cost):
            return float(self._access_cost(access))
        return float(self._access_cost)

    # -- main loop ----------------------------------------------------------------

    def run(self, until: float | None = None) -> SimulationReport:
        """Run until the event heap drains (or past ``until``)."""
        while self._heap:
            t, _, task_id = heapq.heappop(self._heap)
            if until is not None and t > until:
                heapq.heappush(self._heap, (t, next(self._counter), task_id))
                break
            self._now = t
            self._events += 1
            task = self._tasks[task_id]
            if task.naplet.status in (
                NapletStatus.FINISHED,
                NapletStatus.DENIED,
                NapletStatus.FAILED,
            ):
                continue
            self._resume(task, t)
        if self.proof_batch is not None:
            # End of run: everything still coalescing is delivered.
            self.proof_batch.flush()
        deadlocked = tuple(
            sorted(
                task_id
                for task_id, task in self._tasks.items()
                if task.naplet.status is NapletStatus.BLOCKED
            )
        )
        return SimulationReport(
            end_time=self._now,
            events_processed=self._events,
            naplets=tuple(self._tasks[k].naplet for k in self._tasks),
            deadlocked=deadlocked,
        )

    # -- task stepping ----------------------------------------------------------

    def _resume(self, task: _Task, t: float) -> None:
        naplet = task.naplet
        if not task.started:
            task.started = True
            if not self._arrive(task, naplet.location, t, first=True):
                return
        if task.migrating_to is not None:
            destination = task.migrating_to
            task.migrating_to = None
            naplet.location = destination
            if not self._arrive(task, destination, t, first=False):
                return
        naplet.status = NapletStatus.RUNNING
        while True:
            if task.pending is not None:
                request = task.pending
                task.pending = None
            else:
                try:
                    request = task.generator.send(task.inbox)
                except StopIteration:
                    self._finish(task, t)
                    return
                except AgentError as error:
                    naplet.status = NapletStatus.FAILED
                    naplet.error = error
                    self._notify_parent(task, t)
                    return
                finally:
                    task.inbox = None
            if not self._dispatch(task, request, t):
                return

    def _dispatch(self, task: _Task, request: Request, t: float) -> bool:
        """Handle one request.  Returns True to keep stepping inline,
        False when the task yielded control (scheduled/blocked/done)."""
        if isinstance(request, DoAccess):
            return self._do_access(task, request, t)
        if isinstance(request, DoReceive):
            channel = self.coalition.channels.get(request.channel)
            value = channel.try_receive()
            if value is EMPTY:
                channel.add_waiter(task.naplet.naplet_id)
                task.pending = request
                task.naplet.status = NapletStatus.BLOCKED
                return False
            task.inbox = value
            return True
        if isinstance(request, DoSend):
            channel = self.coalition.channels.get(request.channel)
            for waiter in channel.send(request.value):
                self._wake(waiter, t)
            return True
        if isinstance(request, DoSignal):
            for waiter in self.coalition.signals.raise_signal(request.event):
                self._wake(waiter, t)
            return True
        if isinstance(request, DoWait):
            signals = self.coalition.signals
            if signals.is_raised(request.event):
                return True
            signals.add_waiter(request.event, task.naplet.naplet_id)
            task.pending = request
            task.naplet.status = NapletStatus.BLOCKED
            return False
        if isinstance(request, DoSpawn):
            return self._do_spawn(task, request, t)
        raise SimulationError(f"unknown request {request!r}")

    def _wake(self, naplet_id: str, t: float) -> None:
        task = self._tasks.get(naplet_id)
        if task is None:
            raise SimulationError(f"woke unknown agent {naplet_id!r}")
        # Re-attempting a DoWait whose signal has been raised must not
        # re-register; _dispatch handles both cases on resume.
        self._schedule(t, naplet_id)

    # -- access + migration -------------------------------------------------------

    def _do_access(self, task: _Task, request: DoAccess, t: float) -> bool:
        naplet = task.naplet
        if naplet.location != request.server:
            try:
                latency = self.coalition.migration_latency(
                    naplet.location, request.server
                )
            except CoalitionError as error:
                # Migration to an unknown server kills the agent, not
                # the simulation.
                naplet.status = NapletStatus.FAILED
                naplet.error = error
                self._notify_parent(task, t)
                return False
            if naplet.hooks.on_departure:
                naplet.hooks.on_departure(naplet, naplet.location, t)
            naplet.status = NapletStatus.MIGRATING
            task.pending = request
            task.migrating_to = request.server
            # On arrival the pending access is re-attempted.
            self._schedule(t + latency, naplet.naplet_id)
            return False
        access = AccessKey(request.op, request.resource, request.server)
        try:
            self.security.check_permission(naplet, access, t)
        except AccessDenied as denial:
            naplet.denials.append(denial.decision)
            if naplet.hooks.on_denied:
                naplet.hooks.on_denied(naplet, denial.decision, t)
            if self.on_denied == "abort":
                naplet.status = NapletStatus.DENIED
                self._notify_parent(task, t)
                return False
            task.inbox = None
            return True
        server = self.coalition.server(request.server)
        try:
            outcome = server.execute_access(
                naplet.registry, request.op, request.resource, t
            )
        except CoalitionError as error:
            # Unknown resource / unsupported operation: the agent's
            # program is broken, not the coalition.
            naplet.status = NapletStatus.FAILED
            naplet.error = error
            self._notify_parent(task, t)
            return False
        naplet.observations.append((access, outcome.value))
        if self.proof_batch is not None:
            self.proof_batch.enqueue(request.server, outcome.proof, now=t)
            if self.proof_propagation == "eager":
                self.proof_batch.flush()
            else:
                self.proof_batch.flush_due(t)
        self.security.on_access_executed(naplet, access, t)
        task.inbox = outcome.value
        # The access consumes virtual time: resume after its cost.
        self._schedule(t + self._cost_of(access), naplet.naplet_id)
        return False

    def _arrive(self, task: _Task, server: str, t: float, first: bool) -> bool:
        """Arrival bookkeeping; returns False if authentication failed."""
        naplet = task.naplet
        self.coalition.server(server).note_arrival()
        try:
            if first:
                self.security.on_first_arrival(naplet, server, t)
            else:
                self.security.on_migration(naplet, server, t)
        except (AuthenticationError, RbacError) as error:
            naplet.status = NapletStatus.FAILED
            naplet.error = error
            self._notify_parent(task, t)
            return False
        if naplet.hooks.on_arrival:
            naplet.hooks.on_arrival(naplet, server, t)
        return True

    # -- spawning -----------------------------------------------------------------

    def _do_spawn(self, task: _Task, request: DoSpawn, t: float) -> bool:
        parent = task.naplet
        task.children_remaining = len(request.programs)
        for index, program in enumerate(request.programs):
            child = parent.clone(program, suffix=f"clone{index}")
            child_task = _Task(
                naplet=child,
                generator=interpret(child.program, child.env, self.max_loop_iterations),
                parent=task,
            )
            # Clones inherit the parent's session lazily: they present
            # the same certificate at their first arrival.
            self._tasks[child.naplet_id] = child_task
            self._schedule(t, child.naplet_id)
        parent.status = NapletStatus.BLOCKED
        return False

    def _notify_parent(self, task: _Task, t: float) -> None:
        parent = task.parent
        if parent is None:
            return
        parent.children_remaining -= 1
        if parent.children_remaining == 0:
            self._schedule(t, parent.naplet.naplet_id)

    def _finish(self, task: _Task, t: float) -> None:
        naplet = task.naplet
        naplet.status = NapletStatus.FINISHED
        naplet.finish_time = t
        if naplet.hooks.on_finish:
            naplet.hooks.on_finish(naplet, t)
        self._notify_parent(task, t)
