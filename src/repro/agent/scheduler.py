"""Discrete-event simulation of mobile agents roaming a coalition.

This is the emulation substrate the paper builds with the Naplet Java
system, reduced to its essentials: agents are cooperative coroutines
(the SRAL interpreter's request generators), the scheduler owns a
virtual global clock and an event heap, and every effect — resource
access, migration with latency, channel I/O, signal synchronisation,
cloning for ``||`` — is an event.

Key behaviours:

* **Implicit migration** — an access ``op r @ s`` from an agent located
  elsewhere first migrates the agent to ``s`` (taking the coalition's
  latency), then performs the access.  The itinerary thus *emerges*
  from the program, as in the paper's model where computation "spreads
  across several hosting sites".
* **Security interposition** — on first arrival the agent is
  authenticated (certificate + RBAC session + role activation); every
  access then passes ``check_permission`` (spatial + temporal
  constraint checks); migrations notify the engine so per-server
  validity budgets reset under Scheme A.
* **Cloned parallelism** — ``p1 || p2`` spawns child agents with copies
  of the environment (the paper's ``ApplAgentProg`` cloned naplets);
  the parent resumes when all clones finish.
* **Blocking semantics** — ``ch ? x`` blocks on empty channels,
  ``wait(ξ)`` blocks until ``signal(ξ)``; wake-ups re-attempt the
  operation, so racing receivers are handled correctly.  If the event
  heap drains while agents are still blocked, the simulation reports a
  deadlock.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Literal

from repro.agent.interpreter import (
    DoAccess,
    DoReceive,
    DoSend,
    DoSignal,
    DoSpawn,
    DoWait,
    Request,
    interpret,
)
from repro.agent.naplet import Naplet, NapletStatus
from repro.agent.security import PermissiveSecurityManager, SecurityManager
from repro.coalition.channels import EMPTY
from repro.coalition.network import Coalition
from repro.errors import (
    AccessDenied,
    AgentError,
    AuthenticationError,
    CoalitionError,
    MigrationError,
    RbacError,
    ServerUnavailable,
    SimulationError,
)
from repro.faults.plan import FaultPlan
from repro.obs import OBS, RECORDER, REGISTRY
from repro.obs.provenance import DecisionProvenance
from repro.rbac.audit import Decision
from repro.traces.trace import AccessKey

__all__ = ["Simulation", "SimulationReport"]

DeniedPolicy = Literal["abort", "skip"]


@dataclass
class _Task:
    """Scheduler-side state of one agent coroutine."""

    naplet: Naplet
    generator: Any
    inbox: Any = None  # value to send into the generator on resume
    pending: Request | None = None  # request to re-attempt on resume
    parent: "_Task | None" = None
    children_remaining: int = 0
    started: bool = False
    migrating_to: str | None = None  # destination of an in-flight migration
    fault_attempts: int = 0  # consecutive retries against a down server
    fault_since: float | None = None  # first failure time of that streak


@dataclass(frozen=True)
class SimulationReport:
    """Outcome of a simulation run."""

    end_time: float
    events_processed: int
    naplets: tuple[Naplet, ...]
    deadlocked: tuple[str, ...]

    def by_id(self, naplet_id: str) -> Naplet:
        for naplet in self.naplets:
            if naplet.naplet_id == naplet_id:
                return naplet
        raise SimulationError(f"no naplet {naplet_id!r} in report")

    def statuses(self) -> dict[str, str]:
        return {n.naplet_id: n.status.value for n in self.naplets}

    def all_finished(self) -> bool:
        return all(n.status is NapletStatus.FINISHED for n in self.naplets)


class Simulation:
    """A coalition-wide discrete-event simulation.

    Parameters
    ----------
    coalition:
        Servers, latency model, channels, signals.
    security:
        The security manager interposed on every access (default:
        permissive).
    access_cost:
        Virtual time one access takes (or a callable
        ``(AccessKey) -> float``).
    on_denied:
        ``"abort"`` — a denied access terminates the agent with status
        ``DENIED`` (the paper's ``SecurityException``); ``"skip"`` — the
        denial is recorded and the program continues (the access is not
        performed).
    proof_propagation:
        ``None`` (default) — proofs live only in each object's carried
        registry, the paper's baseline.  ``"eager"`` — every executed
        access is announced to every other server immediately (one
        delivery call per access per destination).  ``"batched"`` —
        announcements coalesce in a
        :class:`~repro.service.batching.ProofBatch` and flush when
        their migration-latency window elapses (or on overflow /
        end-of-run), modelling the service's batched propagation.
        Either mode subscribes the batcher to the coalition's
        membership events, so the destination set follows churn.  The
        batcher is exposed as :attr:`proof_batch` for stats and
        explicit flushes.
    proof_batch_size:
        Overflow threshold of the batched mode.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  Installing it
        (done here) attaches the server lifecycle to every coalition
        server and composes the link's extra delay into the latency
        model; proof deliveries then travel through a
        :class:`~repro.faults.transport.FaultyTransport` and retry on
        the plan's backoff schedule, agents re-attempt migrations and
        accesses against down servers on ``migration_retry``, and the
        plan's :class:`~repro.faults.plan.DegradationPolicy` (if any)
        gates decisions on proof-propagation corroboration.  The plan's
        :class:`~repro.faults.churn.MembershipSchedule` (if any) is
        applied by the run loop: joins, graceful leaves, abrupt
        evictions and coalition merges take effect at their scheduled
        virtual times, before any agent event at or after that time.
    """

    def __init__(
        self,
        coalition: Coalition,
        security: SecurityManager | None = None,
        access_cost: float | Callable[[AccessKey], float] = 1.0,
        on_denied: DeniedPolicy = "abort",
        max_loop_iterations: int = 100_000,
        proof_propagation: Literal["eager", "batched"] | None = None,
        proof_batch_size: int = 32,
        faults: FaultPlan | None = None,
    ):
        if on_denied not in ("abort", "skip"):
            raise SimulationError(f"unknown on_denied policy {on_denied!r}")
        self.coalition = coalition
        self.security = security if security is not None else PermissiveSecurityManager()
        self._access_cost = access_cost
        self.on_denied: DeniedPolicy = on_denied
        self.max_loop_iterations = max_loop_iterations
        if proof_propagation not in (None, "eager", "batched"):
            raise SimulationError(
                f"unknown proof_propagation mode {proof_propagation!r}"
            )
        self.proof_propagation = proof_propagation
        self.faults = faults
        if faults is not None:
            if faults.degradation is not None and proof_propagation is None:
                raise SimulationError(
                    "a degradation mode needs proof propagation enabled "
                    "(proof_propagation='eager' or 'batched')"
                )
            faults.install(coalition)
        self.degraded_denials = 0
        self.proof_batch = None
        if proof_propagation is not None:
            # Imported here so the agent layer has no hard dependency
            # on the service layer when propagation is not requested.
            from repro.service.batching import ProofBatch

            transport = faults.transport(coalition) if faults is not None else None
            retry = faults.retry if faults is not None else None
            self.proof_batch = ProofBatch(
                coalition,
                max_batch=proof_batch_size,
                transport=transport,
                retry=retry,
            )

        self._churn = faults.churn if faults is not None else None
        self.churn_applied = 0
        self._tasks: dict[str, _Task] = {}
        self._heap: list[tuple[float, int, str]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._events = 0
        self.migrations = 0
        self.unavailable_retries = 0
        REGISTRY.register_collector(self._collect_obs)

    def __del__(self):
        try:
            REGISTRY.absorb(self._collect_obs())
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def _collect_obs(self) -> dict[str, float]:
        """Pull-time metrics source (the scheduler is single-threaded;
        the registry sums across concurrent simulations)."""
        return {
            "sim.events": self._events,
            "sim.migrations": self.migrations,
            "sim.unavailable_retries": self.unavailable_retries,
            "sim.degraded_denials": self.degraded_denials,
            "sim.churn_applied": self.churn_applied,
        }

    @property
    def now(self) -> float:
        """Current virtual time (end time after :meth:`run` returns,
        advanced further by :meth:`drain_propagation`)."""
        return self._now

    # -- setup -------------------------------------------------------------

    def add_naplet(
        self, naplet: Naplet, start_server: str, at: float = 0.0
    ) -> None:
        """Dispatch ``naplet`` to ``start_server`` at time ``at``."""
        if naplet.naplet_id in self._tasks:
            raise SimulationError(f"duplicate naplet {naplet.naplet_id!r}")
        if start_server not in self.coalition:
            raise SimulationError(f"unknown start server {start_server!r}")
        naplet.location = start_server
        task = _Task(
            naplet=naplet,
            generator=interpret(
                naplet.program, naplet.env, self.max_loop_iterations
            ),
        )
        self._tasks[naplet.naplet_id] = task
        self._schedule(at, naplet.naplet_id)

    # -- event plumbing -------------------------------------------------------

    def _schedule(self, t: float, task_id: str) -> None:
        heapq.heappush(self._heap, (t, next(self._counter), task_id))

    def _cost_of(self, access: AccessKey) -> float:
        if callable(self._access_cost):
            return float(self._access_cost(access))
        return float(self._access_cost)

    # -- main loop ----------------------------------------------------------------

    def run(self, until: float | None = None) -> SimulationReport:
        """Run until the event heap drains (or past ``until``)."""
        while self._heap:
            t, _, task_id = heapq.heappop(self._heap)
            if until is not None and t > until:
                heapq.heappush(self._heap, (t, next(self._counter), task_id))
                break
            self._now = t
            self._events += 1
            # Membership churn scheduled at or before this instant takes
            # effect before the agent event does — an agent can never
            # act on a topology older than its own timestamp.
            self._apply_churn(t)
            task = self._tasks[task_id]
            if task.naplet.status in (
                NapletStatus.FINISHED,
                NapletStatus.DENIED,
                NapletStatus.FAILED,
            ):
                continue
            self._resume(task, t)
        # The topology keeps moving after traffic stops: any remaining
        # scheduled churn is applied (advancing virtual time) so the
        # post-run membership state matches the full schedule.
        if self._churn is not None and (until is None or not self._heap):
            for event in self._churn.due(float("inf")):
                self._now = max(self._now, event.at)
                self._apply_one_churn(event)
        if self.proof_batch is not None:
            # End of run: everything still coalescing is attempted.
            # Under faults the attempt can fail — the batch stays
            # pending for drain_propagation / a post-heal flush.
            self.proof_batch.flush(now=self._now)
        deadlocked = tuple(
            sorted(
                task_id
                for task_id, task in self._tasks.items()
                if task.naplet.status is NapletStatus.BLOCKED
            )
        )
        return SimulationReport(
            end_time=self._now,
            events_processed=self._events,
            naplets=tuple(self._tasks[k].naplet for k in self._tasks),
            deadlocked=deadlocked,
        )

    def drain_propagation(self, until: float | None = None) -> float:
        """Advance virtual time past the workload's end, driving
        outstanding proof-delivery retries until every batch is
        delivered, only parked batches remain, or the next due time
        exceeds ``until``.  Returns the virtual time reached — the
        recovery benchmark's convergence clock.  (Terminates always:
        each destination either delivers or exhausts its retries and
        parks.)"""
        if self.proof_batch is None:
            return self._now
        now = self._now
        while self.proof_batch.pending_count():
            due = self.proof_batch.next_due()
            if due is None:
                break  # only parked batches remain — needs flush()
            if until is not None and due > until:
                break
            now = max(now, due)
            self.proof_batch.flush_due(now)
        self._now = max(self._now, now)
        return now

    # -- task stepping ----------------------------------------------------------

    def _resume(self, task: _Task, t: float) -> None:
        naplet = task.naplet
        if not task.started:
            task.started = True
            if not self._arrive(task, naplet.location, t, first=True):
                return
        if task.migrating_to is not None:
            destination = task.migrating_to
            if destination not in self.coalition:
                # The destination left the coalition while the agent was
                # in flight: departure is permanent, so fail immediately.
                naplet.status = NapletStatus.FAILED
                naplet.error = MigrationError(
                    f"server {destination!r} left the coalition mid-migration"
                )
                self._notify_parent(task, t)
                return
            if not self._server_can_host(destination, t):
                # The destination crashed while the agent was in
                # flight: wait at the door and re-attempt arrival on
                # the migration-retry schedule.
                self._retry_unavailable(task, t, destination)
                return
            task.migrating_to = None
            task.fault_attempts = 0
            task.fault_since = None
            naplet.location = destination
            if not self._arrive(task, destination, t, first=False):
                return
        naplet.status = NapletStatus.RUNNING
        while True:
            if task.pending is not None:
                request = task.pending
                task.pending = None
            else:
                try:
                    request = task.generator.send(task.inbox)
                except StopIteration:
                    self._finish(task, t)
                    return
                except AgentError as error:
                    naplet.status = NapletStatus.FAILED
                    naplet.error = error
                    self._notify_parent(task, t)
                    return
                finally:
                    task.inbox = None
            if not self._dispatch(task, request, t):
                return

    def _dispatch(self, task: _Task, request: Request, t: float) -> bool:
        """Handle one request.  Returns True to keep stepping inline,
        False when the task yielded control (scheduled/blocked/done)."""
        if isinstance(request, DoAccess):
            return self._do_access(task, request, t)
        if isinstance(request, DoReceive):
            channel = self.coalition.channels.get(request.channel)
            value = channel.try_receive()
            if value is EMPTY:
                channel.add_waiter(task.naplet.naplet_id)
                task.pending = request
                task.naplet.status = NapletStatus.BLOCKED
                return False
            task.inbox = value
            return True
        if isinstance(request, DoSend):
            channel = self.coalition.channels.get(request.channel)
            for waiter in channel.send(request.value):
                self._wake(waiter, t)
            return True
        if isinstance(request, DoSignal):
            for waiter in self.coalition.signals.raise_signal(request.event):
                self._wake(waiter, t)
            return True
        if isinstance(request, DoWait):
            signals = self.coalition.signals
            if signals.is_raised(request.event):
                return True
            signals.add_waiter(request.event, task.naplet.naplet_id)
            task.pending = request
            task.naplet.status = NapletStatus.BLOCKED
            return False
        if isinstance(request, DoSpawn):
            return self._do_spawn(task, request, t)
        raise SimulationError(f"unknown request {request!r}")

    def _wake(self, naplet_id: str, t: float) -> None:
        task = self._tasks.get(naplet_id)
        if task is None:
            raise SimulationError(f"woke unknown agent {naplet_id!r}")
        # Re-attempting a DoWait whose signal has been raised must not
        # re-register; _dispatch handles both cases on resume.
        self._schedule(t, naplet_id)

    # -- membership churn ---------------------------------------------------------

    def _apply_churn(self, t: float) -> None:
        """Apply every scheduled membership event due at or before ``t``."""
        if self._churn is None:
            return
        for event in self._churn.due(t):
            self._apply_one_churn(event)

    def _apply_one_churn(self, event) -> None:
        lifecycle = (
            self.faults.lifecycle
            if self.faults is not None and self.faults.lifecycle is not None
            else None
        )
        if event.kind == "join":
            server = event.make_server()
            if lifecycle is not None:
                server.lifecycle = lifecycle
            self.coalition.join(
                server, now=event.at, bootstrap_from=event.bootstrap_from
            )
            servers = (server.name,)
        elif event.kind == "leave":
            self.coalition.leave(event.server, now=event.at)
            servers = (event.server,)
        elif event.kind == "evict":
            if lifecycle is not None:
                # An abrupt departure is a DOWN made permanent: the
                # lifecycle never reports the server up again.
                lifecycle.evict(event.server, event.at)
            self.coalition.evict(event.server, now=event.at)
            servers = (event.server,)
        else:  # merge
            other = event.make_coalition()
            servers = tuple(sorted(other.server_names()))
            self.coalition.merge(other, now=event.at)
            if lifecycle is not None:
                for name in servers:
                    self.coalition.server(name).lifecycle = lifecycle
        self.security.on_membership_change(event.kind, servers)
        self.churn_applied += 1
        if OBS.enabled:
            RECORDER.record(
                "sim.churn",
                time.perf_counter(),
                0.0,
                {
                    "kind": event.kind,
                    "servers": list(servers),
                    "at": event.at,
                    "epoch": self.coalition.membership_epoch,
                },
            )

    # -- fault handling -----------------------------------------------------------

    def _server_can_host(self, server: str, t: float) -> bool:
        """Is ``server`` up (executes accesses, admits agents) at ``t``?"""
        if self.faults is None or self.faults.lifecycle is None:
            return True
        return self.faults.lifecycle.can_execute(server, t)

    def _retry_unavailable(self, task: _Task, t: float, server: str) -> None:
        """``server`` is down in front of the agent: re-attempt on the
        migration-retry backoff, or fail the agent once the schedule is
        exhausted.  The pending request / in-flight migration stays set,
        so the resume re-attempts exactly where it left off."""
        naplet = task.naplet
        retry = self.faults.migration_retry
        if task.fault_since is None:
            task.fault_since = t
        if retry.exhausted(task.fault_attempts, task.fault_since, t):
            naplet.status = NapletStatus.FAILED
            naplet.error = MigrationError(
                f"server {server!r} still unavailable after "
                f"{task.fault_attempts} retries (first failure at "
                f"t={task.fault_since})"
            )
            self._notify_parent(task, t)
            return
        delay = retry.delay(task.fault_attempts)
        task.fault_attempts += 1
        self.unavailable_retries += 1
        if OBS.enabled:
            RECORDER.record(
                "sim.unavailable_retry",
                time.perf_counter(),
                0.0,
                {
                    "naplet": naplet.naplet_id,
                    "server": server,
                    "attempt": task.fault_attempts,
                    "at": t,
                    "delay": delay,
                },
            )
        if task.migrating_to is None:
            naplet.status = NapletStatus.BLOCKED
        self._schedule(t + delay, naplet.naplet_id)

    def _degradation_gap(
        self, naplet: Naplet, server_name: str, t: float
    ) -> list:
        """Foreign proofs in the carried chain that the deciding server
        has not corroborated through propagation and the degradation
        policy does not tolerate."""
        degradation = self.faults.degradation
        server = self.coalition.server(server_name)
        return [
            proof
            for proof in naplet.registry.foreign_proofs(server_name)
            if self.coalition.is_admissible(proof.access.server)
            and not server.knows_proof(proof)
            and not degradation.tolerates(t - proof.local_time)
        ]

    # -- access + migration -------------------------------------------------------

    def _do_access(self, task: _Task, request: DoAccess, t: float) -> bool:
        naplet = task.naplet
        if naplet.location == request.server and request.server not in self.coalition:
            # The server the agent is sitting on left the coalition
            # (churn): departure is permanent, so there is no retry
            # schedule to wait out — the agent fails where it stands.
            naplet.status = NapletStatus.FAILED
            naplet.error = MigrationError(
                f"server {request.server!r} left the coalition"
            )
            self._notify_parent(task, t)
            return False
        if naplet.location != request.server:
            try:
                latency = self.coalition.migration_latency(
                    naplet.location, request.server
                )
            except CoalitionError as error:
                # Migration to an unknown server kills the agent, not
                # the simulation.
                naplet.status = NapletStatus.FAILED
                naplet.error = error
                self._notify_parent(task, t)
                return False
            if naplet.hooks.on_departure:
                naplet.hooks.on_departure(naplet, naplet.location, t)
            naplet.status = NapletStatus.MIGRATING
            task.pending = request
            task.migrating_to = request.server
            self.migrations += 1
            if OBS.enabled:
                RECORDER.record(
                    "sim.migration",
                    time.perf_counter(),
                    0.0,
                    {
                        "naplet": naplet.naplet_id,
                        "from": naplet.location,
                        "to": request.server,
                        "virtual_latency": latency,
                        "at": t,
                    },
                )
            # On arrival the pending access is re-attempted.
            self._schedule(t + latency, naplet.naplet_id)
            return False
        if not self._server_can_host(request.server, t):
            # The server the agent is sitting on crashed: hold the
            # access and re-attempt on the retry schedule.
            task.pending = request
            self._retry_unavailable(task, t, request.server)
            return False
        task.fault_attempts = 0
        task.fault_since = None
        access = AccessKey(request.op, request.resource, request.server)
        try:
            self.security.check_permission(naplet, access, t)
        except AccessDenied as denial:
            naplet.denials.append(denial.decision)
            if naplet.hooks.on_denied:
                naplet.hooks.on_denied(naplet, denial.decision, t)
            if self.on_denied == "abort":
                naplet.status = NapletStatus.DENIED
                self._notify_parent(task, t)
                return False
            task.inbox = None
            return True
        if (
            self.faults is not None
            and self.faults.degradation is not None
            and self.proof_batch is not None
        ):
            gap = self._degradation_gap(naplet, request.server, t)
            if gap:
                # Coordination is degraded: the deciding server cannot
                # corroborate part of the carried history, so the
                # otherwise-grantable access is refused (fail closed /
                # stale-intolerant).  This only ever *adds* denials on
                # top of the engine's verdict — never extra grants.
                self.degraded_denials += 1
                decision = Decision(
                    subject_id=naplet.owner,
                    access=access,
                    granted=False,
                    time=t,
                    reason=(
                        f"degraded ({self.faults.degradation.mode}): "
                        f"{len(gap)} uncorroborated foreign proofs"
                    ),
                    provenance=DecisionProvenance(
                        kind="degraded",
                        uncorroborated=tuple(p.digest for p in gap),
                        detail=self.faults.degradation.mode,
                        epoch=(
                            self.coalition.membership_epoch
                            if getattr(self.security, "coalition", None) is not None
                            else None
                        ),
                    ),
                )
                naplet.denials.append(decision)
                if naplet.hooks.on_denied:
                    naplet.hooks.on_denied(naplet, decision, t)
                if self.on_denied == "abort":
                    naplet.status = NapletStatus.DENIED
                    self._notify_parent(task, t)
                    return False
                task.inbox = None
                return True
        server = self.coalition.server(request.server)
        try:
            outcome = server.execute_access(
                naplet.registry, request.op, request.resource, t
            )
        except ServerUnavailable:
            # Crash window opened exactly at t (defensive: the host
            # check above normally catches this).
            task.pending = request
            self._retry_unavailable(task, t, request.server)
            return False
        except CoalitionError as error:
            # Unknown resource / unsupported operation: the agent's
            # program is broken, not the coalition.
            naplet.status = NapletStatus.FAILED
            naplet.error = error
            self._notify_parent(task, t)
            return False
        naplet.observations.append((access, outcome.value))
        if self.proof_batch is not None:
            self.proof_batch.enqueue(request.server, outcome.proof, now=t)
            if self.proof_propagation == "eager":
                self.proof_batch.flush(now=t)
            else:
                self.proof_batch.flush_due(t)
        self.security.on_access_executed(naplet, access, t)
        task.inbox = outcome.value
        # The access consumes virtual time: resume after its cost.
        self._schedule(t + self._cost_of(access), naplet.naplet_id)
        return False

    def _arrive(self, task: _Task, server: str, t: float, first: bool) -> bool:
        """Arrival bookkeeping; returns False if authentication failed."""
        naplet = task.naplet
        self.coalition.server(server).note_arrival()
        try:
            if first:
                self.security.on_first_arrival(naplet, server, t)
            else:
                self.security.on_migration(naplet, server, t)
        except (AuthenticationError, RbacError) as error:
            naplet.status = NapletStatus.FAILED
            naplet.error = error
            self._notify_parent(task, t)
            return False
        if naplet.hooks.on_arrival:
            naplet.hooks.on_arrival(naplet, server, t)
        return True

    # -- spawning -----------------------------------------------------------------

    def _do_spawn(self, task: _Task, request: DoSpawn, t: float) -> bool:
        parent = task.naplet
        task.children_remaining = len(request.programs)
        for index, program in enumerate(request.programs):
            child = parent.clone(program, suffix=f"clone{index}")
            child_task = _Task(
                naplet=child,
                generator=interpret(child.program, child.env, self.max_loop_iterations),
                parent=task,
            )
            # Clones inherit the parent's session lazily: they present
            # the same certificate at their first arrival.
            self._tasks[child.naplet_id] = child_task
            self._schedule(t, child.naplet_id)
        parent.status = NapletStatus.BLOCKED
        return False

    def _notify_parent(self, task: _Task, t: float) -> None:
        parent = task.parent
        if parent is None:
            return
        parent.children_remaining -= 1
        if parent.children_remaining == 0:
            self._schedule(t, parent.naplet.naplet_id)

    def _finish(self, task: _Task, t: float) -> None:
        naplet = task.naplet
        naplet.status = NapletStatus.FINISHED
        naplet.finish_time = t
        if naplet.hooks.on_finish:
            naplet.hooks.on_finish(naplet, t)
        self._notify_parent(task, t)
