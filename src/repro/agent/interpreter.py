"""The SRAL interpreter: executes a mobile object's program as a
coroutine of effect requests.

The interpreter is deliberately effect-free: it never touches servers,
channels or clocks itself.  Evaluating a program yields a stream of
:class:`Request` objects — access, receive, send, signal, wait, spawn —
and the discrete-event scheduler (:mod:`repro.agent.scheduler`)
performs each effect and sends the result back into the generator.
This is the generator-as-process idiom: agents are cheap cooperative
coroutines, and thousands of them can be simulated without threads.

Expressions are evaluated against the agent's variable environment with
strict typing (no implicit coercions; integer division for ``/`` on
integers, as in the Java substrate the paper used).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Mapping, MutableMapping

from repro.errors import AgentError
from repro.sral.ast import (
    Access,
    Assign,
    BinOp,
    BoolLit,
    Expr,
    If,
    IntLit,
    Par,
    Program,
    Receive,
    Send,
    Seq,
    Signal,
    Skip,
    StrLit,
    UnaryOp,
    Var,
    Wait,
    While,
)

__all__ = [
    "Request",
    "DoAccess",
    "DoReceive",
    "DoSend",
    "DoSignal",
    "DoWait",
    "DoSpawn",
    "evaluate_expr",
    "interpret",
]


@dataclass(frozen=True)
class Request:
    """Base class of interpreter effect requests."""


@dataclass(frozen=True)
class DoAccess(Request):
    """Perform ``op resource @ server`` (migrating there if needed).
    The scheduler sends back the access outcome value (or ``None``)."""

    op: str
    resource: str
    server: str


@dataclass(frozen=True)
class DoReceive(Request):
    """Receive from a channel; blocks while empty.  The scheduler sends
    back the received value."""

    channel: str


@dataclass(frozen=True)
class DoSend(Request):
    """Append ``value`` to a channel."""

    channel: str
    value: Any


@dataclass(frozen=True)
class DoSignal(Request):
    """Raise a signal."""

    event: str


@dataclass(frozen=True)
class DoWait(Request):
    """Block until a signal has been raised."""

    event: str


@dataclass(frozen=True)
class DoSpawn(Request):
    """Run sub-programs concurrently (cloned naplets); the parent
    resumes when all clones finish."""

    programs: tuple[Program, ...]


def evaluate_expr(expr: Expr, env: Mapping[str, Any]) -> Any:
    """Evaluate an SRAL expression in ``env``.

    Raises :class:`~repro.errors.AgentError` for unbound variables,
    type mismatches and division by zero.
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, StrLit):
        return expr.value
    if isinstance(expr, Var):
        try:
            return env[expr.name]
        except KeyError:
            raise AgentError(f"unbound variable {expr.name!r}") from None
    if isinstance(expr, UnaryOp):
        value = evaluate_expr(expr.operand, env)
        if expr.op == "not":
            _expect(bool, value, "not")
            return not value
        if expr.op == "-":
            _expect(int, value, "unary -")
            return -value
        raise AgentError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinOp):
        return _binop(expr, env)
    raise TypeError(f"not an SRAL expression: {expr!r}")


def _expect(kind: type, value: Any, op: str) -> None:
    # bool is a subclass of int in Python; keep them strictly apart.
    if kind is int and isinstance(value, bool) or not isinstance(value, kind):
        raise AgentError(
            f"operator {op!r} expects {kind.__name__}, got {value!r}"
        )


def _binop(expr: BinOp, env: Mapping[str, Any]) -> Any:
    op = expr.op
    # Short-circuit boolean operators evaluate lazily.
    if op == "and":
        left = evaluate_expr(expr.left, env)
        _expect(bool, left, op)
        if not left:
            return False
        right = evaluate_expr(expr.right, env)
        _expect(bool, right, op)
        return right
    if op == "or":
        left = evaluate_expr(expr.left, env)
        _expect(bool, left, op)
        if left:
            return True
        right = evaluate_expr(expr.right, env)
        _expect(bool, right, op)
        return right

    left = evaluate_expr(expr.left, env)
    right = evaluate_expr(expr.right, env)
    if op in ("==", "!="):
        equal = left == right and type(left) is type(right)
        return equal if op == "==" else not equal
    if op in ("+", "-", "*", "/", "%"):
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right
        _expect(int, left, op)
        _expect(int, right, op)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if right == 0:
            raise AgentError(f"division by zero in {op!r}")
        # Java-style truncating integer division.
        if op == "/":
            quotient = abs(left) // abs(right)
            return quotient if (left < 0) == (right < 0) else -quotient
        remainder = abs(left) % abs(right)
        return remainder if left >= 0 else -remainder
    if op in ("<", "<=", ">", ">="):
        _expect(int, left, op)
        _expect(int, right, op)
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        return left >= right
    raise AgentError(f"unknown binary operator {op!r}")


def interpret(
    program: Program,
    env: MutableMapping[str, Any],
    max_loop_iterations: int = 100_000,
) -> Generator[Request, Any, None]:
    """Run ``program`` over ``env`` as a coroutine of effect requests.

    ``max_loop_iterations`` bounds the *total* number of ``while``
    iterations in the run; exceeding it raises
    :class:`~repro.errors.AgentError` (runaway-program guard — SRAL
    itself cannot prove termination, cf. Section 3.2).

    The evaluator is iterative (explicit work stack), so arbitrarily
    long ``;``-chains and deeply nested programs execute without
    touching Python's recursion limit.
    """
    stack: list[Program] = [program]
    iterations = 0
    while stack:
        node = stack.pop()
        if isinstance(node, Skip):
            continue
        if isinstance(node, Access):
            yield DoAccess(node.op, node.resource, node.server)
            continue
        if isinstance(node, Receive):
            value = yield DoReceive(node.channel)
            env[node.var] = value
            continue
        if isinstance(node, Send):
            yield DoSend(node.channel, evaluate_expr(node.expr, env))
            continue
        if isinstance(node, Signal):
            yield DoSignal(node.event)
            continue
        if isinstance(node, Wait):
            yield DoWait(node.event)
            continue
        if isinstance(node, Assign):
            env[node.var] = evaluate_expr(node.expr, env)
            continue
        if isinstance(node, Seq):
            stack.append(node.second)
            stack.append(node.first)
            continue
        if isinstance(node, If):
            cond = evaluate_expr(node.cond, env)
            _expect(bool, cond, "if")
            stack.append(node.then if cond else node.orelse)
            continue
        if isinstance(node, While):
            cond = evaluate_expr(node.cond, env)
            _expect(bool, cond, "while")
            if cond:
                iterations += 1
                if iterations > max_loop_iterations:
                    raise AgentError(
                        f"program exceeded {max_loop_iterations} total "
                        "loop iterations"
                    )
                stack.append(node)  # re-test after the body
                stack.append(node.body)
            continue
        if isinstance(node, Par):
            yield DoSpawn((node.left, node.right))
            continue
        raise TypeError(f"not an SRAL program: {node!r}")
