"""Mobile-agent emulation of mobile computing (paper Section 5).

The Naplet analog: agents (:class:`Naplet`) carry SRAL programs and
hash-chained access histories across a simulated coalition; a
discrete-event :class:`Simulation` drives them through authentication,
role activation, guarded accesses, migrations, channel communication
and cloning; the :class:`NapletSecurityManager` interposes the
coordinated spatio-temporal access control on every access.
"""

from repro.agent.interpreter import (
    DoAccess,
    DoReceive,
    DoSend,
    DoSignal,
    DoSpawn,
    DoWait,
    Request,
    evaluate_expr,
    interpret,
)
from repro.agent.itinerary import (
    AltItinerary,
    Itinerary,
    LoopItinerary,
    SeqItinerary,
    plan_of_program,
)
from repro.agent.naplet import LifecycleHooks, Naplet, NapletStatus
from repro.agent.patterns import (
    AccessPattern,
    LoopPattern,
    ParPattern,
    SeqPattern,
    SingletonPattern,
)
from repro.agent.principal import (
    NAPLET_PRINCIPAL,
    OWNER_PRINCIPAL,
    SERVER_ADMIN_PRINCIPAL,
    Authority,
    Certificate,
)
from repro.agent.scheduler import Simulation, SimulationReport
from repro.agent.security import (
    NapletSecurityManager,
    PermissiveSecurityManager,
    SecurityManager,
)

__all__ = [
    "DoAccess",
    "DoReceive",
    "DoSend",
    "DoSignal",
    "DoSpawn",
    "DoWait",
    "Request",
    "evaluate_expr",
    "interpret",
    "AltItinerary",
    "Itinerary",
    "LoopItinerary",
    "SeqItinerary",
    "plan_of_program",
    "LifecycleHooks",
    "Naplet",
    "NapletStatus",
    "AccessPattern",
    "LoopPattern",
    "ParPattern",
    "SeqPattern",
    "SingletonPattern",
    "NAPLET_PRINCIPAL",
    "OWNER_PRINCIPAL",
    "SERVER_ADMIN_PRINCIPAL",
    "Authority",
    "Certificate",
    "Simulation",
    "SimulationReport",
    "NapletSecurityManager",
    "PermissiveSecurityManager",
    "SecurityManager",
]
