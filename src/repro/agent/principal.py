"""Principals and agent authentication (paper Section 5.1).

The Naplet system authenticates an arriving agent "based on the
certificate of its owner issued by an authority or via a priori
registration", then creates a subject holding a ``NapletPrincipal``.
We reproduce that flow with a deterministic HMAC-style certificate: the
authority registers owners and derives per-owner certificates; a server
presented with ``(owner, certificate)`` recomputes and compares.

Principal names follow the paper's three types:
``NapletPrincipal``, ``NapletOwnerPrincipal`` and
``NapletServerAdministrator``.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import AuthenticationError

__all__ = [
    "NAPLET_PRINCIPAL",
    "OWNER_PRINCIPAL",
    "SERVER_ADMIN_PRINCIPAL",
    "Authority",
    "Certificate",
]

NAPLET_PRINCIPAL = "NapletPrincipal"
OWNER_PRINCIPAL = "NapletOwnerPrincipal"
SERVER_ADMIN_PRINCIPAL = "NapletServerAdministrator"


class Certificate:
    """An owner certificate: the owner name plus an authority MAC."""

    __slots__ = ("owner", "mac")

    def __init__(self, owner: str, mac: str):
        self.owner = owner
        self.mac = mac

    def __repr__(self) -> str:  # pragma: no cover
        return f"Certificate(owner={self.owner!r})"


class Authority:
    """The coalition's certificate authority / registration service."""

    def __init__(self, secret: bytes = b"repro-coalition-authority"):
        self._secret = secret
        self._registered: set[str] = set()

    def register(self, owner: str) -> Certificate:
        """Register an owner and issue its certificate."""
        if not owner:
            raise AuthenticationError("owner name must be non-empty")
        self._registered.add(owner)
        return Certificate(owner, self._mac(owner))

    def _mac(self, owner: str) -> str:
        return hmac.new(self._secret, owner.encode(), hashlib.sha256).hexdigest()

    def authenticate(self, certificate: Certificate) -> frozenset[str]:
        """Validate a certificate; returns the principal set for the
        authenticated subject or raises
        :class:`~repro.errors.AuthenticationError`."""
        if certificate.owner not in self._registered:
            raise AuthenticationError(
                f"owner {certificate.owner!r} is not registered with the authority"
            )
        if not hmac.compare_digest(certificate.mac, self._mac(certificate.owner)):
            raise AuthenticationError(
                f"certificate for {certificate.owner!r} failed verification"
            )
        return frozenset(
            {
                NAPLET_PRINCIPAL,
                f"{OWNER_PRINCIPAL}:{certificate.owner}",
            }
        )

    def is_registered(self, owner: str) -> bool:
        return owner in self._registered
