"""Trace models (Definition 3.2): the set of all traces a program can
perform, represented symbolically as an NFA over access symbols.

``traces(P)`` may be infinite (``while`` introduces Kleene closure), so
an explicit set representation cannot work in general.  A
:class:`TraceModel` wraps an NFA and offers the paper's algebra —
concatenation ``·``, union, interleaving ``#`` and Kleene closure ``*``
— plus decision procedures (membership, equality, inclusion, emptiness,
finiteness) and bounded enumeration for tests.

The translation from programs follows Definition 3.2 exactly:

=====================  =======================================
``traces(a)``          ``{<a>}`` for an access ``a``
``traces(p1 ; p2)``    ``traces(p1) · traces(p2)``
``traces(if…)``        ``traces(p1) ∪ traces(p2)``
``traces(p1 || p2)``   ``traces(p1) # traces(p2)``
``traces(while…)``     ``traces(p)*``
=====================  =======================================

Non-access primitives (channel I/O, signals, assignment, ``skip``) do
not appear in traces; they contribute the empty trace.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.automata.dfa import DFA
from repro.automata.nfa import NFA, NFABuilder
from repro.automata.ops import (
    canonical_form,
    determinize,
    difference,
    equivalent,
    intersect,
    minimize,
)
from repro.errors import TraceModelError
from repro.sral.ast import Access, If, Par, Program, Seq, While
from repro.traces.trace import AccessKey, Trace

__all__ = ["TraceModel", "program_traces"]


def _symbol_nfa(symbol: AccessKey) -> NFA:
    builder = NFABuilder()
    s0, s1 = builder.add_state(), builder.add_state()
    builder.add_edge(s0, symbol, s1)
    return builder.build(s0, [s1])


def _epsilon_nfa() -> NFA:
    builder = NFABuilder()
    s0 = builder.add_state()
    return builder.build(s0, [s0])


def _concat_nfa(left: NFA, right: NFA) -> NFA:
    builder = NFABuilder()
    lmap = builder.embed(left)
    rmap = builder.embed(right)
    for acc in left.accepts:
        builder.add_eps(lmap[acc], rmap[right.start])
    return builder.build(lmap[left.start], [rmap[a] for a in right.accepts])


def _union_nfa(left: NFA, right: NFA) -> NFA:
    builder = NFABuilder()
    start = builder.add_state()
    lmap = builder.embed(left)
    rmap = builder.embed(right)
    builder.add_eps(start, lmap[left.start])
    builder.add_eps(start, rmap[right.start])
    accepts = [lmap[a] for a in left.accepts] + [rmap[a] for a in right.accepts]
    return builder.build(start, accepts)


def _star_nfa(inner: NFA) -> NFA:
    builder = NFABuilder()
    hub = builder.add_state()
    imap = builder.embed(inner)
    builder.add_eps(hub, imap[inner.start])
    for acc in inner.accepts:
        builder.add_eps(imap[acc], hub)
    return builder.build(hub, [hub])


def _shuffle_nfa(left: NFA, right: NFA) -> NFA:
    """Shuffle (interleaving) product: either component may move."""
    builder = NFABuilder()
    index: dict[tuple[int, int], int] = {}

    def state_of(pair: tuple[int, int]) -> int:
        existing = index.get(pair)
        if existing is not None:
            return existing
        fresh = builder.add_state()
        index[pair] = fresh
        return fresh

    start = state_of((left.start, right.start))
    # Materialise the full product lazily via worklist.
    worklist = [(left.start, right.start)]
    seen = {(left.start, right.start)}
    while worklist:
        li, ri = worklist.pop()
        src = state_of((li, ri))
        for symbol, dsts in left.edges[li].items():
            for dst in dsts:
                pair = (dst, ri)
                builder.add_edge(src, symbol, state_of(pair))
                if pair not in seen:
                    seen.add(pair)
                    worklist.append(pair)
        for dst in left.eps[li]:
            pair = (dst, ri)
            builder.add_eps(src, state_of(pair))
            if pair not in seen:
                seen.add(pair)
                worklist.append(pair)
        for symbol, dsts in right.edges[ri].items():
            for dst in dsts:
                pair = (li, dst)
                builder.add_edge(src, symbol, state_of(pair))
                if pair not in seen:
                    seen.add(pair)
                    worklist.append(pair)
        for dst in right.eps[ri]:
            pair = (li, dst)
            builder.add_eps(src, state_of(pair))
            if pair not in seen:
                seen.add(pair)
                worklist.append(pair)
    accepts = [
        state
        for (li, ri), state in index.items()
        if li in left.accepts and ri in right.accepts
    ]
    return builder.build(start, accepts)


def _dfa_to_nfa(dfa: DFA) -> NFA:
    """View a DFA as an NFA (for wrapping boolean-operation results)."""
    builder = NFABuilder()
    states = builder.add_states(dfa.n_states)
    for src in range(dfa.n_states):
        for symbol, dst in dfa.delta[src].items():
            builder.add_edge(states[src], symbol, states[dst])
    return builder.build(states[dfa.start], [states[a] for a in dfa.accepts])


class TraceModel:
    """A (regular) set of traces, wrapped around an NFA.

    Instances are immutable; the algebra returns new models.  The
    deterministic form is computed lazily and cached for decision
    procedures.
    """

    __slots__ = ("nfa", "_dfa", "_canon")

    def __init__(self, nfa: NFA):
        self.nfa = nfa
        self._dfa: DFA | None = None
        self._canon = None

    # -- constructors ----------------------------------------------------

    @staticmethod
    def empty_trace() -> "TraceModel":
        """The model ``{<>}`` containing only the empty trace."""
        return TraceModel(_epsilon_nfa())

    @staticmethod
    def nothing() -> "TraceModel":
        """The empty model ``{}`` (no trace at all).  Not expressible as
        ``traces(P)`` — every program has at least one trace — but useful
        as an algebraic zero."""
        builder = NFABuilder()
        s0 = builder.add_state()
        return TraceModel(builder.build(s0, []))

    @staticmethod
    def single(access: AccessKey | tuple[str, str, str]) -> "TraceModel":
        """The model ``{<a>}``."""
        return TraceModel(_symbol_nfa(AccessKey(*access)))

    @staticmethod
    def of_traces(traces: Iterable[Trace]) -> "TraceModel":
        """A finite model from explicit traces."""
        builder = NFABuilder()
        start = builder.add_state()
        accepts = []
        for trace in traces:
            current = start
            for symbol in trace:
                nxt = builder.add_state()
                builder.add_edge(current, AccessKey(*symbol), nxt)
                current = nxt
            accepts.append(current)
        return TraceModel(builder.build(start, accepts))

    # -- algebra (Definition 3.2 operators) --------------------------------

    def concat(self, other: "TraceModel") -> "TraceModel":
        """Concatenation ``self · other``."""
        return TraceModel(_concat_nfa(self.nfa, other.nfa))

    def union(self, other: "TraceModel") -> "TraceModel":
        """Union ``self ∪ other``."""
        return TraceModel(_union_nfa(self.nfa, other.nfa))

    def interleave(self, other: "TraceModel") -> "TraceModel":
        """Interleaving ``self # other`` (shuffle product)."""
        return TraceModel(_shuffle_nfa(self.nfa, other.nfa))

    def star(self) -> "TraceModel":
        """Kleene closure ``self*``."""
        return TraceModel(_star_nfa(self.nfa))

    # Boolean operations (beyond the Definition 3.2 constructors; regular
    # languages are closed under all of them, and the checker's theory
    # relies on that closure).

    def intersect(self, other: "TraceModel") -> "TraceModel":
        """Traces in both models."""
        return TraceModel(_dfa_to_nfa(intersect(self.dfa, other.dfa)))

    def minus(self, other: "TraceModel") -> "TraceModel":
        """Traces of self that are not traces of other."""
        return TraceModel(_dfa_to_nfa(difference(self.dfa, other.dfa)))

    def complement(self, alphabet: Iterable[AccessKey | tuple[str, str, str]]) -> "TraceModel":
        """All traces over ``alphabet`` *not* in the model."""
        keys = [AccessKey(*a) for a in alphabet]
        return TraceModel(_dfa_to_nfa(self.dfa.complement(keys)))

    # -- decision procedures ----------------------------------------------

    @property
    def dfa(self) -> DFA:
        """Minimal DFA of the model (computed lazily, cached)."""
        if self._dfa is None:
            self._dfa = minimize(determinize(self.nfa))
        return self._dfa

    def contains(self, trace: Trace) -> bool:
        """Membership: is ``trace`` in the model?"""
        return self.nfa.accepts_word(tuple(AccessKey(*a) for a in trace))

    def __contains__(self, trace: Trace) -> bool:
        return self.contains(trace)

    def equals(self, other: "TraceModel") -> bool:
        """Language equality."""
        return equivalent(self.dfa, other.dfa)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceModel):
            return NotImplemented
        return self.equals(other)

    def __hash__(self) -> int:
        if self._canon is None:
            self._canon = canonical_form(self.dfa)
        return hash(self._canon)

    def included_in(self, other: "TraceModel") -> bool:
        """Inclusion: every trace of self is a trace of other."""
        return difference(self.dfa, other.dfa).is_empty()

    def is_empty(self) -> bool:
        """True iff the model contains no trace at all."""
        return self.dfa.is_empty()

    def is_finite(self) -> bool:
        """True iff the model is a finite set of traces.

        The minimal DFA is trimmed and useless-state-free, so the
        language is infinite iff the graph has a cycle.
        """
        dfa = self.dfa
        # Iterative DFS cycle detection (colors: 0 new, 1 open, 2 done).
        color = [0] * dfa.n_states
        for root in range(dfa.n_states):
            if color[root]:
                continue
            stack: list[tuple[int, Iterator[int]]] = [
                (root, iter(dfa.delta[root].values()))
            ]
            color[root] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == 1:
                        return False
                    if color[nxt] == 0:
                        color[nxt] = 1
                        stack.append((nxt, iter(dfa.delta[nxt].values())))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()
        return True

    # -- enumeration --------------------------------------------------------

    def enumerate(self, max_length: int) -> Iterator[Trace]:
        """All traces of length ≤ ``max_length`` (shortest first)."""
        yield from self.dfa.words_up_to(max_length)

    def all_traces(self, limit: int = 100_000) -> frozenset[Trace]:
        """Every trace of a *finite* model.  Raises
        :class:`~repro.errors.TraceModelError` if the model is infinite
        or larger than ``limit``."""
        if not self.is_finite():
            raise TraceModelError("cannot enumerate an infinite trace model")
        out: set[Trace] = set()
        # A finite trimmed DFA is acyclic: no trace is longer than n_states.
        for trace in self.dfa.words_up_to(self.dfa.n_states):
            out.add(trace)
            if len(out) > limit:
                raise TraceModelError(
                    f"finite trace model exceeds enumeration limit {limit}"
                )
        return frozenset(out)

    def shortest_trace(self) -> Trace | None:
        """A shortest trace of the model (None if empty)."""
        return self.nfa.shortest_word()

    def sample(self, rng, max_length: int = 50) -> Trace | None:
        """A random trace of the model (``None`` if the model is empty).

        Walks the minimal DFA taking uniform random choices among
        "useful" moves — stopping (if accepting) counts as one choice —
        and restarts if ``max_length`` is exceeded.  Every trace of
        length ≤ ``max_length`` has positive probability; the
        distribution is *not* uniform over traces.

        ``rng`` is a ``numpy.random.Generator`` (pass a seeded one for
        reproducibility).
        """
        dfa = self.dfa
        if dfa.is_empty():
            return None
        for _ in range(1000):  # restart budget; each attempt can stop early
            state = dfa.start
            word: list[AccessKey] = []
            while len(word) <= max_length:
                choices: list[AccessKey | None] = list(dfa.delta[state].keys())
                if state in dfa.accepts:
                    choices.append(None)  # stop here
                if not choices:
                    break  # dead end (cannot happen on minimized DFA)
                pick = choices[int(rng.integers(len(choices)))]
                if pick is None:
                    return tuple(word)
                word.append(pick)
                state = dfa.delta[state][pick]
        # Fall back to a shortest trace if sampling kept overrunning.
        return self.shortest_trace()

    def __repr__(self) -> str:  # pragma: no cover
        return f"TraceModel({self.nfa!r})"


def program_traces(program: Program) -> TraceModel:
    """``traces(P)`` per Definition 3.2.

    Conditions on ``if``/``while`` are treated nondeterministically
    (both branches / any iteration count are possible), which is exactly
    the paper's trace semantics.

    The construction is a single-builder Thompson translation — linear
    in program size for ``;``/``if``/``while``; only ``||`` pays for a
    shuffle product (which is inherently product-sized).
    """
    builder = NFABuilder()
    start, accepts = _build_into(program, builder)
    return TraceModel(builder.build(start, accepts))


def _build_into(program: Program, builder: NFABuilder) -> tuple[int, list[int]]:
    """Thompson-construct ``program`` inside ``builder``; returns the
    fragment's start state and accepting states."""
    if isinstance(program, Access):
        s0, s1 = builder.add_state(), builder.add_state()
        builder.add_edge(s0, AccessKey(*program.key()), s1)
        return s0, [s1]
    if isinstance(program, Seq):
        first_start, first_accepts = _build_into(program.first, builder)
        second_start, second_accepts = _build_into(program.second, builder)
        for state in first_accepts:
            builder.add_eps(state, second_start)
        return first_start, second_accepts
    if isinstance(program, If):
        fork = builder.add_state()
        then_start, then_accepts = _build_into(program.then, builder)
        else_start, else_accepts = _build_into(program.orelse, builder)
        builder.add_eps(fork, then_start)
        builder.add_eps(fork, else_start)
        return fork, then_accepts + else_accepts
    if isinstance(program, While):
        hub = builder.add_state()
        body_start, body_accepts = _build_into(program.body, builder)
        builder.add_eps(hub, body_start)
        for state in body_accepts:
            builder.add_eps(state, hub)
        return hub, [hub]
    if isinstance(program, Par):
        # Shuffle the two sides' standalone automata, then splice the
        # product in (one embed; the product size is unavoidable).
        left = program_traces(program.left).nfa
        right = program_traces(program.right).nfa
        shuffled = _shuffle_nfa(left, right)
        mapping = builder.embed(shuffled)
        return mapping[shuffled.start], [mapping[a] for a in shuffled.accepts]
    if isinstance(program, Program):
        # skip, channel I/O, signals, assignment: no resource access.
        state = builder.add_state()
        return state, [state]
    raise TypeError(f"not an SRAL program: {program!r}")
