"""Trace models of mobile-object programs (paper Section 3.2).

* :mod:`repro.traces.trace` — traces as tuples of access triples and
  the per-trace operators (concatenation, interleaving, ...).
* :mod:`repro.traces.model` — :class:`TraceModel`, the symbolic set of
  all traces of a program, with the Definition 3.2 algebra.
* :mod:`repro.traces.regular` — regular trace models and the
  constructive Theorem 3.1 (regular completeness).
"""

from repro.traces.model import TraceModel, program_traces
from repro.traces.regular import (
    Alt,
    Cat,
    Eps,
    Regex,
    Star,
    Sym,
    regex_size,
    regex_to_program,
    regex_traces,
    verify_regular_completeness,
)
from repro.traces.trace import (
    EMPTY_TRACE,
    AccessKey,
    Trace,
    concat,
    count_interleavings,
    count_matching,
    head,
    interleavings,
    is_subsequence,
    make_trace,
    occurs_before,
    tail,
)

__all__ = [
    "TraceModel",
    "program_traces",
    "Alt",
    "Cat",
    "Eps",
    "Regex",
    "Star",
    "Sym",
    "regex_size",
    "regex_to_program",
    "regex_traces",
    "verify_regular_completeness",
    "EMPTY_TRACE",
    "AccessKey",
    "Trace",
    "concat",
    "count_interleavings",
    "count_matching",
    "head",
    "interleavings",
    "is_subsequence",
    "make_trace",
    "occurs_before",
    "tail",
]
