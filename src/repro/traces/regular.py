"""Regular trace models and the constructive proof of Theorem 3.1.

Definition 3.3 builds *regular trace models* from singleton models
``{a}`` by union, concatenation and Kleene closure.  We mirror that
with a tiny regular-expression AST (:class:`Sym`, :class:`Alt`,
:class:`Cat`, :class:`Star`, plus :class:`Eps` for the empty trace) and
provide:

* :func:`regex_traces` — the trace model denoted by a regex;
* :func:`regex_to_program` — **Theorem 3.1**: a SRAL program ``P`` with
  ``traces(P)`` equal to the regex's model, following the induction in
  the paper's proof (``Alt`` becomes ``if``, ``Cat`` becomes ``;``,
  ``Star`` becomes ``while``);
* :func:`verify_regular_completeness` — machine-checks the theorem on a
  given regex by deciding language equality between the regex's model
  and the synthesised program's model.

The conditions introduced for ``if``/``while`` are fresh opaque
variables ("for some condition c", as the proof says): the trace
semantics ignores them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

from repro.sral.ast import If, Program, Seq, Skip, Var, While
from repro.sral.ast import Access as AccessNode
from repro.traces.model import TraceModel, program_traces
from repro.traces.trace import AccessKey

__all__ = [
    "Regex",
    "Sym",
    "Eps",
    "Alt",
    "Cat",
    "Star",
    "regex_traces",
    "regex_to_program",
    "verify_regular_completeness",
    "regex_size",
]


@dataclass(frozen=True)
class Regex:
    """Base class of regular trace-model expressions."""

    def children(self) -> tuple["Regex", ...]:
        return ()


@dataclass(frozen=True)
class Sym(Regex):
    """Singleton model ``{<a>}``."""

    access: AccessKey

    def __post_init__(self) -> None:
        # Normalise plain tuples to AccessKey.
        if not isinstance(self.access, AccessKey):
            object.__setattr__(self, "access", AccessKey(*self.access))


@dataclass(frozen=True)
class Eps(Regex):
    """The model ``{<>}`` (the empty trace) — ``traces(skip)``."""


@dataclass(frozen=True)
class Alt(Regex):
    """Union of two regular trace models."""

    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Cat(Regex):
    """Concatenation of two regular trace models."""

    left: Regex
    right: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Star(Regex):
    """Kleene closure of a regular trace model."""

    inner: Regex

    def children(self) -> tuple[Regex, ...]:
        return (self.inner,)


def regex_size(regex: Regex) -> int:
    """Number of nodes in the regex."""
    return 1 + sum(regex_size(c) for c in regex.children())


def regex_traces(regex: Regex) -> TraceModel:
    """The trace model denoted by ``regex``."""
    if isinstance(regex, Sym):
        return TraceModel.single(regex.access)
    if isinstance(regex, Eps):
        return TraceModel.empty_trace()
    if isinstance(regex, Alt):
        return regex_traces(regex.left).union(regex_traces(regex.right))
    if isinstance(regex, Cat):
        return regex_traces(regex.left).concat(regex_traces(regex.right))
    if isinstance(regex, Star):
        return regex_traces(regex.inner).star()
    raise TypeError(f"not a regex: {regex!r}")


def _fresh_conditions(prefix: str) -> Iterator[Var]:
    for i in itertools.count():
        yield Var(f"{prefix}{i}")


def regex_to_program(regex: Regex, cond_prefix: str = "c") -> Program:
    """Constructive Theorem 3.1: synthesise a SRAL program whose trace
    model equals ``regex``'s.

    * ``Sym a``     → the access ``a``
    * ``Eps``       → ``skip``
    * ``Alt t v``   → ``if c then P_t else P_v`` (fresh opaque ``c``)
    * ``Cat t v``   → ``P_t ; P_v``
    * ``Star t``    → ``while c do P_t`` (fresh opaque ``c``)
    """
    conditions = _fresh_conditions(cond_prefix)

    def build(node: Regex) -> Program:
        if isinstance(node, Sym):
            return AccessNode(node.access.op, node.access.resource, node.access.server)
        if isinstance(node, Eps):
            return Skip()
        if isinstance(node, Alt):
            return If(next(conditions), build(node.left), build(node.right))
        if isinstance(node, Cat):
            return Seq(build(node.left), build(node.right))
        if isinstance(node, Star):
            return While(next(conditions), build(node.inner))
        raise TypeError(f"not a regex: {node!r}")

    return build(regex)


def verify_regular_completeness(regex: Regex) -> bool:
    """Machine-check Theorem 3.1 on one instance: synthesise the program
    and decide whether its trace model equals the regex's model.

    Always returns ``True`` if the implementation is correct; the
    benchmarks time this check across regex sizes (experiment EXP-T31).
    """
    program = regex_to_program(regex)
    return regex_traces(regex).equals(program_traces(program))
