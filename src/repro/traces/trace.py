"""Traces: finite sequences of shared-resource accesses.

A *trace* (Section 3.2 of the paper) is the sequence of accesses a
mobile object performs during one execution.  We represent a trace as a
plain tuple of :class:`AccessKey` triples — cheap, hashable and directly
usable as automaton symbols.  ``AccessKey`` is a ``NamedTuple``, so it
compares equal to the bare ``(op, resource, server)`` tuples returned by
:meth:`repro.sral.ast.Access.key`.

The paper's trace operators (concatenation ``t·v``, interleaving
``t # v``, head/tail) are provided as functions over tuples.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

__all__ = [
    "AccessKey",
    "Trace",
    "EMPTY_TRACE",
    "make_trace",
    "head",
    "tail",
    "concat",
    "interleavings",
    "count_interleavings",
    "is_subsequence",
    "count_matching",
    "occurs_before",
]


class AccessKey(NamedTuple):
    """The ``(op, resource, server)`` identity of an access.

    The mobile object *o* of the paper's access tuple *(o, op, r, s)* is
    implicit: a trace always belongs to one mobile object.
    """

    op: str
    resource: str
    server: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op} {self.resource} @ {self.server}"


Trace = tuple[AccessKey, ...]

EMPTY_TRACE: Trace = ()


def make_trace(*accesses: Iterable[str] | AccessKey) -> Trace:
    """Build a trace from triples: ``make_trace(("read","r1","s1"), ...)``."""
    return tuple(AccessKey(*a) for a in accesses)


def head(trace: Trace) -> AccessKey:
    """The first access of a non-empty trace (paper's ``head``)."""
    return trace[0]


def tail(trace: Trace) -> Trace:
    """Everything after the first access (paper's ``tail``)."""
    return trace[1:]


def concat(t: Trace, v: Trace) -> Trace:
    """Concatenation ``t · v``."""
    return t + v


def interleavings(t: Trace, v: Trace) -> Iterator[Trace]:
    """All interleavings of ``t`` and ``v`` (the paper's ``t # v``),
    defined recursively as in Section 3.2::

        t # <>  = {t}
        <> # v  = {v}
        t # v   = {head(t)·x | x ∈ tail(t) # v}
                ∪ {head(v)·x | x ∈ t # tail(v)}

    Duplicates (which arise when ``t`` and ``v`` share symbols) are
    emitted once.  The number of interleavings is C(|t|+|v|, |t|), so
    call this only on short traces; trace-model interleaving at scale
    goes through the shuffle product in :mod:`repro.traces.model`.
    """
    seen: set[Trace] = set()

    def rec(a: Trace, b: Trace, prefix: list[AccessKey]) -> Iterator[Trace]:
        if not a or not b:
            candidate = tuple(prefix) + a + b
            if candidate not in seen:
                seen.add(candidate)
                yield candidate
            return
        prefix.append(a[0])
        yield from rec(a[1:], b, prefix)
        prefix.pop()
        prefix.append(b[0])
        yield from rec(a, b[1:], prefix)
        prefix.pop()

    return rec(t, v, [])


def count_interleavings(t: Trace, v: Trace) -> int:
    """The number of *distinct* interleavings of ``t`` and ``v``."""
    return sum(1 for _ in interleavings(t, v))


def is_subsequence(needle: Trace, haystack: Trace) -> bool:
    """True iff ``needle``'s accesses occur in ``haystack`` in order
    (not necessarily adjacently)."""
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


def count_matching(trace: Trace, accesses: frozenset[AccessKey] | set) -> int:
    """How many accesses of ``trace`` fall in the set ``accesses`` —
    the ``#`` cardinality of SRAC's counting constraint."""
    return sum(1 for a in trace if a in accesses)


def occurs_before(trace: Trace, first: AccessKey, second: AccessKey) -> bool:
    """True iff some occurrence of ``first`` strictly precedes some
    occurrence of ``second`` in ``trace`` — the core of the ordered
    constraint ``first ⊗ second`` (Definition 3.6)."""
    for index, access in enumerate(trace):
        if access == first:
            return second in trace[index + 1 :]
    return False
