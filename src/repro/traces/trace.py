"""Traces: finite sequences of shared-resource accesses.

A *trace* (Section 3.2 of the paper) is the sequence of accesses a
mobile object performs during one execution.  We represent a trace as a
plain tuple of :class:`AccessKey` triples — cheap, hashable and directly
usable as automaton symbols.  ``AccessKey`` is a ``NamedTuple``, so it
compares equal to the bare ``(op, resource, server)`` tuples returned by
:meth:`repro.sral.ast.Access.key`.

The paper's trace operators (concatenation ``t·v``, interleaving
``t # v``, head/tail) are provided as functions over tuples.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, NamedTuple

__all__ = [
    "AccessKey",
    "Trace",
    "EMPTY_TRACE",
    "make_trace",
    "head",
    "tail",
    "concat",
    "interleavings",
    "count_interleavings",
    "is_subsequence",
    "count_matching",
    "occurs_before",
]


class AccessKey(NamedTuple):
    """The ``(op, resource, server)`` identity of an access.

    The mobile object *o* of the paper's access tuple *(o, op, r, s)* is
    implicit: a trace always belongs to one mobile object.
    """

    op: str
    resource: str
    server: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.op} {self.resource} @ {self.server}"

    @classmethod
    def of(
        cls,
        op: "str | AccessKey | tuple[str, str, str]",
        resource: str | None = None,
        server: str | None = None,
    ) -> "AccessKey":
        """The process-wide interned instance equal to the given key.

        Observation logs, explicit histories and the columnar session
        store all hold the *same* accesses over and over; interning
        collapses those duplicates to one tuple per distinct
        ``(op, resource, server)``.  Accepts either the three fields or
        a single key/triple: ``AccessKey.of("read", "r1", "s1")`` and
        ``AccessKey.of(("read", "r1", "s1"))`` return the same object.

        The intern table is lock-striped: the read path is a plain
        GIL-atomic dict probe, only a miss takes its stripe's lock to
        insert.  The table is bounded by the access alphabet (ops ×
        resources × servers actually seen), not by traffic.
        """
        if resource is None:
            key = op if type(op) is cls else cls(*op)  # type: ignore[misc]
        else:
            key = cls(op, resource, server)  # type: ignore[arg-type]
        stripe = hash(key) % _INTERN_STRIPES
        table = _intern_tables[stripe]
        found = table.get(key)
        if found is None:
            with _intern_locks[stripe]:
                found = table.get(key)
                if found is None:
                    table[key] = found = key
        return found


#: Stripe count of the :meth:`AccessKey.of` intern table (locks guard
#: inserts only; lookups are GIL-atomic dict probes).
_INTERN_STRIPES = 16
_intern_locks = tuple(threading.Lock() for _ in range(_INTERN_STRIPES))
_intern_tables: tuple[dict, ...] = tuple({} for _ in range(_INTERN_STRIPES))


Trace = tuple[AccessKey, ...]

EMPTY_TRACE: Trace = ()


def make_trace(*accesses: Iterable[str] | AccessKey) -> Trace:
    """Build a trace from triples: ``make_trace(("read","r1","s1"), ...)``."""
    return tuple(AccessKey(*a) for a in accesses)


def head(trace: Trace) -> AccessKey:
    """The first access of a non-empty trace (paper's ``head``)."""
    return trace[0]


def tail(trace: Trace) -> Trace:
    """Everything after the first access (paper's ``tail``)."""
    return trace[1:]


def concat(t: Trace, v: Trace) -> Trace:
    """Concatenation ``t · v``."""
    return t + v


def interleavings(t: Trace, v: Trace) -> Iterator[Trace]:
    """All interleavings of ``t`` and ``v`` (the paper's ``t # v``),
    defined recursively as in Section 3.2::

        t # <>  = {t}
        <> # v  = {v}
        t # v   = {head(t)·x | x ∈ tail(t) # v}
                ∪ {head(v)·x | x ∈ t # tail(v)}

    Duplicates (which arise when ``t`` and ``v`` share symbols) are
    emitted once.  The number of interleavings is C(|t|+|v|, |t|), so
    call this only on short traces; trace-model interleaving at scale
    goes through the shuffle product in :mod:`repro.traces.model`.
    """
    seen: set[Trace] = set()

    def rec(a: Trace, b: Trace, prefix: list[AccessKey]) -> Iterator[Trace]:
        if not a or not b:
            candidate = tuple(prefix) + a + b
            if candidate not in seen:
                seen.add(candidate)
                yield candidate
            return
        prefix.append(a[0])
        yield from rec(a[1:], b, prefix)
        prefix.pop()
        prefix.append(b[0])
        yield from rec(a, b[1:], prefix)
        prefix.pop()

    return rec(t, v, [])


def count_interleavings(t: Trace, v: Trace) -> int:
    """The number of *distinct* interleavings of ``t`` and ``v``."""
    return sum(1 for _ in interleavings(t, v))


def is_subsequence(needle: Trace, haystack: Trace) -> bool:
    """True iff ``needle``'s accesses occur in ``haystack`` in order
    (not necessarily adjacently)."""
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


def count_matching(trace: Trace, accesses: frozenset[AccessKey] | set) -> int:
    """How many accesses of ``trace`` fall in the set ``accesses`` —
    the ``#`` cardinality of SRAC's counting constraint."""
    return sum(1 for a in trace if a in accesses)


def occurs_before(trace: Trace, first: AccessKey, second: AccessKey) -> bool:
    """True iff some occurrence of ``first`` strictly precedes some
    occurrence of ``second`` in ``trace`` — the core of the ordered
    constraint ``first ⊗ second`` (Definition 3.6)."""
    for index, access in enumerate(trace):
        if access == first:
            return second in trace[index + 1 :]
    return False
