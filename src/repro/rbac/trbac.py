"""Interval-based temporal RBAC — the TRBAC/GTRBAC baseline
(paper Section 7, Related Work).

Bertino et al.'s TRBAC enables/disables *roles* over periodic intervals
of a discrete absolute timeline; Joshi et al.'s GTRBAC generalises the
constraint language.  The paper argues this family is ill-suited to
mobile computing for two reasons we make measurable:

1. **Role granularity** — "a disabling event of a role would revoke all
   of its granted privileges", so permissions needing different windows
   force extra roles (:meth:`TRBACPolicy.roles_required` quantifies
   the blow-up);
2. **Absolute time** — interval checks need a synchronised clock, but
   "there is no global clock in distributed systems and the arrival
   time of a mobile object on a server is unpredictable": a server
   evaluating an interval on its *skewed local clock* grants/denies
   wrongly near window edges (benchmarked against the duration scheme
   in ``benchmarks/bench_baselines.py``).

This is a faithful *baseline*, not a straw man: within a single
well-synchronised site it behaves exactly as TRBAC should.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.coalition.clock import ServerClock
from repro.errors import RbacError
from repro.traces.trace import AccessKey

__all__ = ["PeriodicInterval", "TRBACPolicy", "TRBACEngine"]


@dataclass(frozen=True)
class PeriodicInterval:
    """A periodic enabling expression: within every period of length
    ``period``, the role is enabled during ``[start, end)`` (offsets
    from the period boundary).

    ``PeriodicInterval(24.0, 0.0, 3.0)`` = "daily, midnight to 3am" —
    the newspaper window as TRBAC would write it.
    """

    period: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise RbacError("period must be positive")
        if not 0 <= self.start < self.period:
            raise RbacError("window start must lie within the period")
        if not self.start < self.end <= self.period:
            raise RbacError("window must be non-empty and within the period")

    def enabled_at(self, t: float) -> bool:
        """Is the role enabled at absolute time ``t``?"""
        phase = t % self.period
        return self.start <= phase < self.end

    def window_length(self) -> float:
        return self.end - self.start


class TRBACPolicy:
    """Role-enabling declarations plus role→permission assignment.

    Permissions are plain access patterns (op/resource/server with
    ``"*"`` wildcards); the temporal dimension lives on the *role*, as
    in TRBAC.
    """

    def __init__(self) -> None:
        self._enabling: dict[str, PeriodicInterval] = {}
        self._permissions: dict[str, list[tuple[str, str, str]]] = {}

    def add_role(
        self,
        role: str,
        enabling: PeriodicInterval | None = None,
    ) -> None:
        if role in self._enabling or role in self._permissions:
            raise RbacError(f"duplicate role {role!r}")
        self._permissions[role] = []
        if enabling is not None:
            self._enabling[role] = enabling

    def grant(self, role: str, op: str = "*", resource: str = "*", server: str = "*") -> None:
        if role not in self._permissions:
            raise RbacError(f"unknown role {role!r}")
        self._permissions[role].append((op, resource, server))

    def role_enabled(self, role: str, t: float) -> bool:
        """Roles without an enabling expression are always enabled."""
        if role not in self._permissions:
            raise RbacError(f"unknown role {role!r}")
        interval = self._enabling.get(role)
        return interval.enabled_at(t) if interval is not None else True

    def role_matches(self, role: str, access: AccessKey) -> bool:
        return any(
            op in ("*", access.op)
            and resource in ("*", access.resource)
            and server in ("*", access.server)
            for op, resource, server in self._permissions.get(role, ())
        )

    def roles(self) -> list[str]:
        return sorted(self._permissions)

    @staticmethod
    def roles_required(permission_windows: Mapping[str, PeriodicInterval]) -> int:
        """The paper's granularity critique, quantified: TRBAC needs one
        role per *distinct* permission window, because disabling a role
        revokes everything it grants.  Given a mapping permission →
        window, returns the number of roles TRBAC must define (distinct
        windows), versus the coordinated model's 1."""
        return len(set(permission_windows.values()))


class TRBACEngine:
    """Decides accesses by evaluating role enabling on the *serving
    server's local clock* — the only clock a coalition server has.

    ``decide(roles, access, global_time, clock)`` returns whether any
    held role is enabled (on the skewed local reading) and grants the
    access.  Compare with the ground truth ``decide(..., ServerClock())``
    to count wrongful decisions under skew.
    """

    def __init__(self, policy: TRBACPolicy):
        self.policy = policy

    def decide(
        self,
        roles: Iterable[str],
        access: AccessKey | tuple[str, str, str],
        global_time: float,
        clock: ServerClock | None = None,
    ) -> bool:
        access = AccessKey(*access)
        local = (clock or ServerClock()).local_time(global_time)
        return any(
            self.policy.role_enabled(role, local)
            and self.policy.role_matches(role, access)
            for role in roles
        )
