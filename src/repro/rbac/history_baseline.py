"""Local-history access control — the history-based baseline
(paper Section 7: Abadi & Fournet [1], Edjlali et al. [5]).

These mechanisms determine a code's rights from its *execution history
on the local site*.  The paper's critique: "this mechanism only
inspects the execution history on the local site.  As a result, it can
not be applied to access control in a coalition environment, where the
authorization decision depends on the access actions on other related
sites."

:class:`LocalHistoryEngine` evaluates the same SRAC constraints as the
coordinated engine but sees only the slice of the history performed at
the deciding server.  On single-site workloads it is exactly as strong;
on coalition workloads it wrongly grants whatever the other sites'
history would forbid — quantified in ``benchmarks/bench_baselines.py``.
"""

from __future__ import annotations

from typing import Sequence

from repro.srac.ast import Constraint, constraint_alphabet
from repro.srac.checker import satisfiable_extension
from repro.traces.trace import AccessKey, Trace

__all__ = ["LocalHistoryEngine", "CoordinatedReference"]


class LocalHistoryEngine:
    """Per-site history-based decisions (the [1]/[5] model).

    ``decide(constraint, history, access)`` filters the carried history
    down to accesses performed *at the requested access's server* —
    all a local mechanism can observe — then applies the same
    still-satisfiable test as the coordinated engine.
    """

    def decide(
        self,
        constraint: Constraint,
        history: Trace,
        access: AccessKey | tuple[str, str, str],
        extra_alphabet: Sequence[AccessKey] = (),
    ) -> bool:
        access = AccessKey(*access)
        local_history = tuple(
            AccessKey(*a) for a in history if AccessKey(*a).server == access.server
        )
        universe = tuple(
            dict.fromkeys(
                (*constraint_alphabet(constraint), *extra_alphabet, access)
            )
        )
        return satisfiable_extension(
            constraint, local_history + (access,), universe
        )


class CoordinatedReference:
    """The coordinated decision (full carried history) with the same
    interface, for side-by-side comparison in benchmarks."""

    def decide(
        self,
        constraint: Constraint,
        history: Trace,
        access: AccessKey | tuple[str, str, str],
        extra_alphabet: Sequence[AccessKey] = (),
    ) -> bool:
        access = AccessKey(*access)
        full_history = tuple(AccessKey(*a) for a in history)
        universe = tuple(
            dict.fromkeys(
                (*constraint_alphabet(constraint), *extra_alphabet, access)
            )
        )
        return satisfiable_extension(
            constraint, full_history + (access,), universe
        )
