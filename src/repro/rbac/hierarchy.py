"""Role hierarchies (RBAC1): senior roles inherit the permissions of
their juniors.

The paper notes that "the indirect assignment of permissions to
subjects and the permission inheritance in role hierarchies facilitate
the privilege delegation and security policy making" — this module is
that machinery: a DAG over roles with transitive permission
inheritance, cycle rejection, and the closure queries the engine needs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import RbacError
from repro.rbac.model import Role

__all__ = ["RoleHierarchy"]


class RoleHierarchy:
    """A DAG of roles.  ``add_inheritance(senior, junior)`` makes
    ``senior`` inherit every permission of ``junior`` (and of the
    junior's juniors, transitively)."""

    def __init__(self) -> None:
        self._juniors: dict[Role, set[Role]] = {}

    def add_inheritance(self, senior: Role, junior: Role) -> None:
        """Declare ``senior ≥ junior``.  Rejects self-loops and edges
        that would close a cycle."""
        if senior == junior:
            raise RbacError(f"role {senior.name!r} cannot inherit from itself")
        if senior in self.juniors_of(junior):
            raise RbacError(
                f"adding {senior.name!r} -> {junior.name!r} would create a cycle"
            )
        self._juniors.setdefault(senior, set()).add(junior)

    def direct_juniors(self, role: Role) -> frozenset[Role]:
        return frozenset(self._juniors.get(role, ()))

    def juniors_of(self, role: Role) -> frozenset[Role]:
        """All roles ``role`` inherits from, transitively (excluding
        itself)."""
        seen: set[Role] = set()
        queue = deque(self._juniors.get(role, ()))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._juniors.get(current, ()))
        return frozenset(seen)

    def closure(self, roles: Iterable[Role]) -> frozenset[Role]:
        """The given roles plus everything they inherit — the role set
        whose permissions a subject effectively holds."""
        out: set[Role] = set()
        for role in roles:
            out.add(role)
            out |= self.juniors_of(role)
        return frozenset(out)

    def seniors_of(self, role: Role) -> frozenset[Role]:
        """All roles that (transitively) inherit from ``role``."""
        out: set[Role] = set()
        changed = True
        while changed:
            changed = False
            for senior, juniors in self._juniors.items():
                if senior in out:
                    continue
                if juniors & (out | {role}):
                    out.add(senior)
                    changed = True
        return frozenset(out)

    def roles(self) -> frozenset[Role]:
        """Every role mentioned by the hierarchy."""
        out: set[Role] = set(self._juniors)
        for juniors in self._juniors.values():
            out |= juniors
        return frozenset(out)
