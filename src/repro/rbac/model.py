"""Core RBAC entities (paper Section 3.4).

The basic components: a set of users, roles, permissions and subjects.
"A user is a human being, e.g. the security officer, or a mobile
object"; a subject relates an authenticated user to roles in a session.

Our :class:`Permission` extends the classical (operation, object) pair
with the paper's two additions:

* an optional **spatial constraint** (SRAC) that must be satisfiable
  for the permission to be active (Eq. 3.1), and
* a **validity duration** ``dur(perm)`` metering the time the
  permission may stay valid (Eq. 4.1); ``math.inf`` means
  time-insensitive.

Permissions match accesses by exact name or the ``"*"`` wildcard on
each of operation / resource / server, so one permission can cover a
family of accesses ("read any resource at s1").
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import FrozenSet

from repro.errors import RbacError
from repro.srac.ast import Constraint
from repro.traces.trace import AccessKey

__all__ = ["User", "Role", "Permission", "Subject", "WILDCARD"]

WILDCARD = "*"


@dataclass(frozen=True)
class User:
    """A human or mobile-object owner known to the coalition."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise RbacError("user name must be non-empty")


@dataclass(frozen=True)
class Role:
    """A named collection of permissions for a job function."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise RbacError("role name must be non-empty")


@dataclass(frozen=True)
class Permission:
    """A grantable right over shared-resource accesses.

    Parameters
    ----------
    name:
        Unique permission identifier.
    op, resource, server:
        Access pattern; each is an exact value or ``"*"``.
    spatial_constraint:
        SRAC constraint gating activation (``None`` = unconstrained).
    validity_duration:
        ``dur(perm)`` in time units (default: time-insensitive).
    """

    name: str
    op: str = WILDCARD
    resource: str = WILDCARD
    server: str = WILDCARD
    spatial_constraint: Constraint | None = None
    validity_duration: float = math.inf

    def __post_init__(self) -> None:
        if not self.name:
            raise RbacError("permission name must be non-empty")
        if self.validity_duration <= 0:
            raise RbacError(
                f"permission {self.name!r}: validity duration must be positive"
            )

    def matches(self, access: AccessKey | tuple[str, str, str]) -> bool:
        """Does this permission cover ``access``?"""
        access = AccessKey(*access)
        return (
            self.op in (WILDCARD, access.op)
            and self.resource in (WILDCARD, access.resource)
            and self.server in (WILDCARD, access.server)
        )

    @property
    def time_sensitive(self) -> bool:
        return not math.isinf(self.validity_duration)


_subject_counter = itertools.count(1)


@dataclass(frozen=True)
class Subject:
    """An authenticated principal-set acting for a user (created by the
    engine at login; see the Naplet authentication flow in Section 5.1)."""

    user: User
    principals: FrozenSet[str] = frozenset()
    subject_id: str = field(default="")

    def __post_init__(self) -> None:
        if not self.subject_id:
            object.__setattr__(
                self, "subject_id", f"subject-{next(_subject_counter)}"
            )
        object.__setattr__(self, "principals", frozenset(self.principals))

    def has_principal(self, principal: str) -> bool:
        return principal in self.principals
