"""Columnar struct-of-arrays session store.

A resident session's hot state — validity-tracker accrual, compiled
monitor states, the active role set and the observation log — lives in
per-engine **numpy columns** indexed by row instead of per-session
Python objects.  A ``Session`` dataclass costs hundreds of bytes to
kilobytes of object overhead (dict headers, list over-allocation,
tracker ``__slots__`` instances, recorder lists); at the ROADMAP's
"millions of users" scale that overhead *is* the memory bill.  The
columnar layout brings a resident session down to a fixed set of
scalar cells:

::

    row columns (one entry per session row)
      start_time   f64   last_seen   f64   alive  u8   gen  i32
      sid_seq      i64   subj_seq    i64
      user_id      i32   principals_id i32  role_set_id i32
      obs_head/obs_tail/obs_len/obs_ver     i32 (observation list)

    per tracker key (lazily created, one cell per row)
      alloc u8  active u8  anchor f64  consumed0 f64  expiry f64
      now f64   dur i16 (index into the key's distinct durations)
      + an append-only timeline event arena (row, gen, time, kind)

    per compiled constraint (lazily created, one cell per row)
      state i64  — the mixed-radix monitor-product encoding of
      :class:`repro.srac.compiled.TransitionTable` (same strides), so
      the vectorized sweep reads a ready-made table state id

    observation arena (append-only, shared by all rows)
      sym i32 (interned AccessKey id)   nxt i32 (linked list)

Scalar callers never see the columns: :class:`StoredSession` is a lazy
**handle** that duck-types :class:`repro.rbac.engine.Session` — its
``trackers`` mapping yields :class:`ColumnTracker` views that replay
:class:`repro.temporal.validity.ValidityTracker`'s closed-form accrual
*expression for expression* against the columns, so decisions, audit
records and recorded timelines are bit-identical to the object-backed
engine (property-tested in ``tests/test_session_store.py``).  Handles
are cached per row in a ``WeakValueDictionary``; when the last handle
of a *closed* row dies, a ``weakref.finalize`` hook returns the row to
the free list (rows are generation-stamped so stale finalizers and
stale handles can never free or mutate a recycled row).

Timeline recording (the audit ``valid``/``active`` state functions) is
columnar too: events append to a per-tracker-key arena and are replayed
through a real :class:`~repro.temporal.timeline.TimelineRecorder` only
when a timeline is actually requested.  Stores built with
``record_timelines=False`` skip the arena entirely — the
million-session benchmark's configuration — at the price of
``valid_timeline()`` raising :class:`~repro.errors.TemporalError`.
"""

from __future__ import annotations

import math
import threading
import weakref
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, MutableSet

import numpy as np

from repro.errors import RbacError, TemporalError
from repro.rbac.model import Role, Subject, User
from repro.temporal.timeline import BooleanTimeline, TimelineRecorder
from repro.temporal.validity import (
    CODE_ACTIVE_INVALID,
    CODE_INACTIVE,
    CODE_VALID,
    PermissionState,
    Scheme,
)
from repro.traces.trace import AccessKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.srac.compiled import TransitionTable
    from repro.srac.monitors import CompiledConstraint

__all__ = ["SessionStore", "StoredSession", "ColumnTracker"]

_INITIAL_ROWS = 64
_INITIAL_ARENA = 256

# Timeline event kinds (per tracker-key event arena).
_EV_ACTIVE_OFF = 0
_EV_ACTIVE_ON = 1
_EV_VALID_OFF = 2
_EV_VALID_ON = 3


class _Column:
    """One growable numpy column (capacity doubling, stable dtype)."""

    __slots__ = ("data", "fill")

    def __init__(self, capacity: int, dtype, fill=0):
        self.fill = fill
        self.data = np.full(capacity, fill, dtype=dtype)

    def grow(self, capacity: int) -> None:
        old = self.data
        if capacity <= old.size:
            return
        new = np.full(capacity, self.fill, dtype=old.dtype)
        new[: old.size] = old
        self.data = new


class _Arena:
    """An append-only growable numpy array with an element count."""

    __slots__ = ("data", "count", "fill")

    def __init__(self, dtype, fill=0, capacity: int = _INITIAL_ARENA):
        self.data = np.full(capacity, fill, dtype=dtype)
        self.count = 0
        self.fill = fill

    def _ensure(self, extra: int) -> None:
        need = self.count + extra
        if need > self.data.size:
            capacity = max(need, self.data.size * 2)
            new = np.full(capacity, self.fill, dtype=self.data.dtype)
            new[: self.count] = self.data[: self.count]
            self.data = new

    def append(self, value) -> int:
        self._ensure(1)
        index = self.count
        self.data[index] = value
        self.count = index + 1
        return index


class _TrackerColumns:
    """Column set for one tracker key: closed-form accrual cells plus
    the timeline event arena.  The cell fields mirror
    :class:`~repro.temporal.validity.ValidityTracker`'s slots one for
    one (``dur`` indirects through the key's distinct durations so the
    cell stays 2 bytes instead of a float column)."""

    __slots__ = (
        "alloc",
        "active",
        "anchor",
        "consumed0",
        "expiry",
        "now",
        "dur",
        "durations",
        "_dur_codes",
        "record_events",
        "ev_row",
        "ev_gen",
        "ev_time",
        "ev_kind",
    )

    def __init__(self, capacity: int, record_events: bool):
        self.alloc = _Column(capacity, np.uint8)
        self.active = _Column(capacity, np.uint8)
        self.anchor = _Column(capacity, np.float64)
        self.consumed0 = _Column(capacity, np.float64)
        self.expiry = _Column(capacity, np.float64, fill=math.inf)
        self.now = _Column(capacity, np.float64)
        self.dur = _Column(capacity, np.int16, fill=-1)
        self.durations: list[float] = []
        self._dur_codes: dict[float, int] = {}
        self.record_events = record_events
        if record_events:
            self.ev_row = _Arena(np.int32)
            self.ev_gen = _Arena(np.int32)
            self.ev_time = _Arena(np.float64)
            self.ev_kind = _Arena(np.int8)
        else:
            self.ev_row = self.ev_gen = self.ev_time = self.ev_kind = None

    def columns(self) -> tuple[_Column, ...]:
        return (
            self.alloc,
            self.active,
            self.anchor,
            self.consumed0,
            self.expiry,
            self.now,
            self.dur,
        )

    def dur_code(self, duration: float) -> int:
        duration = float(duration)
        code = self._dur_codes.get(duration)
        if code is None:
            code = len(self.durations)
            if code > 32000:  # pragma: no cover - pathological policies
                raise RbacError(
                    "too many distinct validity durations for one tracker key"
                )
            self.durations.append(duration)
            self._dur_codes[duration] = code
        return code

    def record(self, row: int, gen: int, kind: int, t: float) -> None:
        if self.record_events:
            self.ev_row.append(row)
            self.ev_gen.append(gen)
            self.ev_time.append(t)
            self.ev_kind.append(kind)

    def replay(self, row: int, gen: int) -> tuple[TimelineRecorder, TimelineRecorder]:
        """Re-run this row's recorded events through fresh recorders —
        the exact ``set`` call sequence the object-backed tracker made,
        so the frozen timelines are identical."""
        if not self.record_events:
            raise TemporalError(
                "timeline recording is disabled for this session store "
                "(record_timelines=False)"
            )
        valid = TimelineRecorder(initial=False)
        active = TimelineRecorder(initial=False)
        n = self.ev_row.count
        rows = self.ev_row.data[:n]
        gens = self.ev_gen.data[:n]
        mask = (rows == row) & (gens == gen)
        for i in np.nonzero(mask)[0].tolist():
            kind = int(self.ev_kind.data[i])
            t = float(self.ev_time.data[i])
            if kind == _EV_VALID_ON:
                valid.set(t, True)
            elif kind == _EV_VALID_OFF:
                valid.set(t, False)
            elif kind == _EV_ACTIVE_ON:
                active.set(t, True)
            else:
                active.set(t, False)
        return valid, active


class _MonitorColumn:
    """Per-constraint monitor-product states, one mixed-radix encoded
    int64 per row (``-1`` = not initialised for that row).  The strides
    are the same MSB-first mixed radix as
    :class:`repro.srac.compiled.TransitionTable`, so an initialised
    cell *is* a valid table state id for any table compiled from the
    same constraint."""

    __slots__ = ("compiled", "sizes", "strides", "col")

    def __init__(self, compiled: "CompiledConstraint", capacity: int):
        self.compiled = compiled
        self.sizes = tuple(m.size() for m in compiled.monitors)
        strides = [1] * len(self.sizes)
        for i in range(len(self.sizes) - 2, -1, -1):
            strides[i] = strides[i + 1] * self.sizes[i + 1]
        self.strides = tuple(strides)
        self.col = _Column(capacity, np.int64, fill=-1)

    def encode(self, states: tuple[int, ...]) -> int:
        return int(sum(s * stride for s, stride in zip(states, self.strides)))

    def decode(self, state_id: int) -> tuple[int, ...]:
        return tuple(
            (state_id // stride) % size
            for stride, size in zip(self.strides, self.sizes)
        )


class ColumnTracker:
    """A :class:`~repro.temporal.validity.ValidityTracker`-compatible
    view over one tracker cell.  Every method is a line-for-line port
    of the object tracker's closed-form accrual — the same float
    expressions in the same order — so scalar decisions and recorded
    timelines agree bit for bit.  The view pins its session handle
    (``_session``) so the row cannot be recycled while the view is
    reachable."""

    __slots__ = ("_tc", "_row", "_gen", "_session", "scheme")

    def __init__(
        self,
        tc: _TrackerColumns,
        row: int,
        gen: int,
        scheme: Scheme,
        session: "StoredSession | None" = None,
    ):
        self._tc = tc
        self._row = row
        self._gen = gen
        self._session = session
        self.scheme = scheme

    @property
    def duration(self) -> float:
        tc = self._tc
        return tc.durations[int(tc.dur.data[self._row])]

    # -- internal clock (ports of ValidityTracker) -----------------------

    def _pending_expiry(self) -> float:
        tc, row = self._tc, self._row
        duration = self.duration
        consumed0 = float(tc.consumed0.data[row])
        if math.isinf(duration) or consumed0 >= duration:
            return math.inf
        return float(tc.anchor.data[row]) + (duration - consumed0)

    def _consumed_at(self, t: float) -> float:
        tc, row = self._tc, self._row
        duration = self.duration
        consumed0 = float(tc.consumed0.data[row])
        if not tc.active.data[row] or consumed0 >= duration:
            return consumed0
        if t >= float(tc.expiry.data[row]):
            return duration
        return consumed0 + (t - float(tc.anchor.data[row]))

    def _advance(self, t: float) -> None:
        tc, row = self._tc, self._row
        now = float(tc.now.data[row])
        if t < now:
            raise TemporalError(f"event at {t} is before current time {now}")
        if tc.active.data[row] and t >= float(tc.expiry.data[row]):
            expiry = float(tc.expiry.data[row])
            tc.record(row, self._gen, _EV_VALID_OFF, expiry)
            tc.consumed0.data[row] = self.duration
            tc.anchor.data[row] = expiry
            tc.expiry.data[row] = math.inf
        tc.now.data[row] = t

    def _consolidate(self, t: float) -> None:
        tc, row = self._tc, self._row
        tc.consumed0.data[row] = self._consumed_at(t)
        tc.anchor.data[row] = t

    # -- events ----------------------------------------------------------

    def activate(self, t: float) -> None:
        tc, row = self._tc, self._row
        self._advance(t)
        if tc.active.data[row]:
            return
        tc.active.data[row] = 1
        tc.record(row, self._gen, _EV_ACTIVE_ON, t)
        tc.anchor.data[row] = t
        if float(tc.consumed0.data[row]) < self.duration:
            tc.record(row, self._gen, _EV_VALID_ON, t)
        tc.expiry.data[row] = self._pending_expiry()

    def deactivate(self, t: float) -> None:
        tc, row = self._tc, self._row
        self._advance(t)
        if not tc.active.data[row]:
            return
        self._consolidate(t)
        tc.active.data[row] = 0
        tc.expiry.data[row] = math.inf
        tc.record(row, self._gen, _EV_ACTIVE_OFF, t)
        tc.record(row, self._gen, _EV_VALID_OFF, t)

    def migrate(self, t: float) -> None:
        tc, row = self._tc, self._row
        self._advance(t)
        if self.scheme is Scheme.PER_SERVER:
            tc.consumed0.data[row] = 0.0
            tc.anchor.data[row] = t
            if tc.active.data[row]:
                tc.record(row, self._gen, _EV_VALID_ON, t)
                tc.expiry.data[row] = self._pending_expiry()

    # -- queries ---------------------------------------------------------

    def state(self, t: float | None = None) -> PermissionState:
        tc, row = self._tc, self._row
        if t is not None:
            self._advance(t)
        if not tc.active.data[row]:
            return PermissionState.INACTIVE
        if float(tc.consumed0.data[row]) >= self.duration:
            return PermissionState.ACTIVE_INVALID
        return PermissionState.VALID

    def is_valid(self, t: float | None = None) -> bool:
        return self.state(t) is PermissionState.VALID

    def remaining_budget(self, t: float | None = None) -> float:
        tc, row = self._tc, self._row
        if t is not None:
            self._advance(t)
        duration = self.duration
        if math.isinf(duration):
            return math.inf
        return max(0.0, duration - self._consumed_at(float(tc.now.data[row])))

    def expiry_time(self) -> float | None:
        tc, row = self._tc, self._row
        duration = self.duration
        if not tc.active.data[row] or float(tc.consumed0.data[row]) >= duration:
            return None
        if math.isinf(duration):
            return None
        return float(tc.expiry.data[row])

    # -- compiled views (batched sweeps) ---------------------------------

    def profile(self) -> tuple[bool, float]:
        tc, row = self._tc, self._row
        if not tc.active.data[row]:
            return (False, math.inf)
        if float(tc.consumed0.data[row]) >= self.duration:
            return (True, -math.inf)
        return (True, float(tc.expiry.data[row]))

    def breakpoints(self) -> tuple[np.ndarray, np.ndarray]:
        active, expiry = self.profile()
        if not active:
            return (
                np.empty(0, dtype=np.float64),
                np.array([CODE_INACTIVE], dtype=np.uint8),
            )
        if math.isinf(expiry):
            code = CODE_ACTIVE_INVALID if expiry < 0 else CODE_VALID
            return (
                np.empty(0, dtype=np.float64),
                np.array([code], dtype=np.uint8),
            )
        return (
            np.array([expiry], dtype=np.float64),
            np.array([CODE_VALID, CODE_ACTIVE_INVALID], dtype=np.uint8),
        )

    def state_codes_at(self, ts: np.ndarray) -> np.ndarray:
        times, codes = self.breakpoints()
        return codes[np.searchsorted(times, ts, side="right")]

    # -- audit -----------------------------------------------------------

    def valid_timeline(self) -> BooleanTimeline:
        valid, _active = self._tc.replay(self._row, self._gen)
        return valid.freeze()

    def active_timeline(self) -> BooleanTimeline:
        _valid, active = self._tc.replay(self._row, self._gen)
        return active.freeze()

    @property
    def now(self) -> float:
        return float(self._tc.now.data[self._row])


class _RoleSetView(MutableSet):
    """``session.active_roles`` over the interned role-set column.
    Mutations re-intern (role sets are tiny and shared by construction:
    a coalition has a handful of distinct activation profiles)."""

    __slots__ = ("_session",)

    def __init__(self, session: "StoredSession"):
        self._session = session

    @classmethod
    def _from_iterable(cls, it) -> set:
        # Set algebra on the view (``roles | {r}``) yields plain sets.
        return set(it)

    def _current(self) -> frozenset:
        session = self._session
        return session._store.role_set(session._row)

    def __contains__(self, role: object) -> bool:
        return role in self._current()

    def __iter__(self) -> Iterator[Role]:
        return iter(self._current())

    def __len__(self) -> int:
        return len(self._current())

    def add(self, role: Role) -> None:
        current = self._current()
        if role not in current:
            session = self._session
            session._store.set_role_set(session._row, current | {role})

    def discard(self, role: Role) -> None:
        current = self._current()
        if role in current:
            session = self._session
            session._store.set_role_set(session._row, current - {role})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{set(self._current())!r}"


class _TrackerMap(Mapping):
    """``session.trackers``: tracker keys allocated for this row,
    yielding cached :class:`ColumnTracker` views."""

    __slots__ = ("_session", "_views")

    def __init__(self, session: "StoredSession"):
        self._session = session
        self._views: dict[str, ColumnTracker] = {}

    def _view(self, key: str, tc: _TrackerColumns) -> ColumnTracker:
        view = self._views.get(key)
        if view is None:
            session = self._session
            view = ColumnTracker(
                tc, session._row, session._gen, session._store.scheme, session
            )
            self._views[key] = view
        return view

    def get(self, key: str, default=None):
        session = self._session
        tc = session._store._trackers.get(key)
        if tc is None or not tc.alloc.data[session._row]:
            return default
        return self._view(key, tc)

    def __getitem__(self, key: str) -> ColumnTracker:
        view = self.get(key)
        if view is None:
            raise KeyError(key)
        return view

    def __iter__(self) -> Iterator[str]:
        session = self._session
        row = session._row
        for key, tc in session._store._trackers.items():
            if tc.alloc.data[row]:
                yield key

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __contains__(self, key: object) -> bool:
        session = self._session
        tc = session._store._trackers.get(key)
        return tc is not None and bool(tc.alloc.data[session._row])


class _MonitorCacheView:
    """``session.monitor_cache``: dict-compatible façade over the
    monitor-state columns (truthiness, length, ``clear`` and item reads
    are what engine internals and tests use)."""

    __slots__ = ("_session",)

    def __init__(self, session: "StoredSession"):
        self._session = session

    def _entries(self):
        session = self._session
        return session._store.monitor_items(session._row)

    def __bool__(self) -> bool:
        session = self._session
        return session._store.has_monitor_state(session._row)

    def __len__(self) -> int:
        return len(self._entries())

    def __contains__(self, constraint: object) -> bool:
        session = self._session
        return (
            session._store.monitor_entry(session._row, constraint) is not None
        )

    def get(self, constraint, default=None):
        session = self._session
        entry = session._store.monitor_entry(session._row, constraint)
        return entry if entry is not None else default

    def items(self):
        return self._entries()

    def keys(self):
        return [constraint for constraint, _entry in self._entries()]

    def clear(self) -> None:
        session = self._session
        session._store.clear_monitor_row(session._row)


class StoredSession:
    """A live handle to one store row, duck-typing
    :class:`repro.rbac.engine.Session`.

    Handles are *views*: all state reads and writes go to the columns,
    so any number of materialisations of the same session observe the
    same state (the store caches one handle per row while referenced).
    ``view_rebuilds`` counts ``observed`` tuple-view materialisations —
    the regression meter for the memo-churn fix."""

    __slots__ = (
        "_store",
        "_row",
        "_gen",
        "subject",
        "session_id",
        "start_time",
        "_observed_view",
        "_view_ver",
        "view_rebuilds",
        "_tracker_map",
        "_role_view",
        "_monitor_view",
        "_shard_index",
        "_router",
        "__weakref__",
    )

    def __init__(
        self, store: "SessionStore", row: int, subject: Subject | None = None
    ):
        self._store = store
        self._row = row
        self._gen = int(store._gen.data[row])
        self.start_time = float(store._start_time.data[row])
        self.session_id = f"session-{int(store._sid_seq.data[row])}"
        self.subject = subject if subject is not None else store.subject_of(row)
        self._observed_view: tuple[AccessKey, ...] | None = None
        self._view_ver = -1
        self.view_rebuilds = 0
        self._tracker_map: _TrackerMap | None = None
        self._role_view: _RoleSetView | None = None
        self._monitor_view: _MonitorCacheView | None = None
        self._shard_index: int | None = None
        self._router: object | None = None

    # -- Session surface --------------------------------------------------

    @property
    def active_roles(self) -> _RoleSetView:
        view = self._role_view
        if view is None:
            view = self._role_view = _RoleSetView(self)
        return view

    @active_roles.setter
    def active_roles(self, roles: Iterable[Role]) -> None:
        self._store.set_role_set(self._row, frozenset(roles))

    @property
    def trackers(self) -> _TrackerMap:
        view = self._tracker_map
        if view is None:
            view = self._tracker_map = _TrackerMap(self)
        return view

    @property
    def monitor_cache(self) -> _MonitorCacheView:
        view = self._monitor_view
        if view is None:
            view = self._monitor_view = _MonitorCacheView(self)
        return view

    @property
    def observed(self) -> tuple[AccessKey, ...]:
        ver = int(self._store._obs_ver.data[self._row])
        if self._observed_view is None or self._view_ver != ver:
            self._observed_view = tuple(self._store.observed_list(self._row))
            self._view_ver = ver
            self.view_rebuilds += 1
        return self._observed_view

    @observed.setter
    def observed(self, value: Iterable[AccessKey | tuple[str, str, str]]) -> None:
        self._store.set_observations(self._row, value)

    def observed_len(self) -> int:
        return int(self._store._obs_len.data[self._row])

    def record_observation(self, access: AccessKey) -> None:
        self._store.append_observation(self._row, access)

    def record_observations(self, accesses: Iterable[AccessKey]) -> None:
        self._store.extend_observations(self._row, accesses)

    @property
    def last_seen(self) -> float:
        return float(self._store._last_seen.data[self._row])

    def touch(self, t: float) -> None:
        cells = self._store._last_seen.data
        if t > cells[self._row]:
            cells[self._row] = t

    def role_set(self) -> frozenset:
        """The interned active-role frozenset (no per-call copy)."""
        return self._store.role_set(self._row)

    def create_tracker(
        self, key: str, duration: float, scheme: Scheme
    ) -> ColumnTracker:
        self._store.alloc_tracker(self._row, key, duration)
        return self.trackers[key]

    def advance_monitors(self, access: AccessKey) -> None:
        self._store.step_monitors_row(self._row, access)

    def monitor_entry(self, constraint):
        return self._store.monitor_entry(self._row, constraint)

    def init_monitor(self, constraint, compiled):
        return self._store.init_monitor(self._row, constraint, compiled)

    def clear_monitor_states(self) -> None:
        self._store.clear_monitor_row(self._row)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoredSession(session_id={self.session_id!r}, "
            f"subject={self.subject!r}, row={self._row})"
        )


class SessionStore:
    """The columnar backing of one engine's resident sessions.

    All mutation happens on the owning engine's thread (under the shard
    lock in sharded deployments) — the store inherits the engine's
    threading contract.  The only cross-thread touch point is the
    garbage collector running handle finalizers, so the free list and
    the generation column are guarded by ``_free_lock``.

    ``set_observations`` (the ``observed`` setter / churn rescind path)
    rebuilds a row's log at the arena tail and orphans the old nodes:
    the arena is append-only by design — rescinds are rare relative to
    observations, and compaction would invalidate live row links.
    """

    def __init__(self, scheme: Scheme, record_timelines: bool = True):
        self.scheme = scheme
        self.record_timelines = record_timelines
        capacity = _INITIAL_ROWS
        self._start_time = _Column(capacity, np.float64)
        self._last_seen = _Column(capacity, np.float64, fill=-math.inf)
        self._alive = _Column(capacity, np.uint8)
        self._gen = _Column(capacity, np.int32)
        self._sid_seq = _Column(capacity, np.int64, fill=-1)
        self._subj_seq = _Column(capacity, np.int64, fill=-1)
        self._user_id = _Column(capacity, np.int32, fill=-1)
        self._principals_id = _Column(capacity, np.int32, fill=-1)
        self._role_set_id = _Column(capacity, np.int32)
        self._obs_head = _Column(capacity, np.int32, fill=-1)
        self._obs_tail = _Column(capacity, np.int32, fill=-1)
        self._obs_len = _Column(capacity, np.int32)
        self._obs_ver = _Column(capacity, np.int32)
        self._row_columns: list[_Column] = [
            self._start_time,
            self._last_seen,
            self._alive,
            self._gen,
            self._sid_seq,
            self._subj_seq,
            self._user_id,
            self._principals_id,
            self._role_set_id,
            self._obs_head,
            self._obs_tail,
            self._obs_len,
            self._obs_ver,
        ]
        # Interning tables.  Index 0 of the role sets is the empty set
        # (every fresh row's default).
        self._users: list[User] = []
        self._user_codes: dict[User, int] = {}
        self._principal_sets: list[frozenset] = []
        self._principal_codes: dict[frozenset, int] = {}
        self._role_sets: list[frozenset] = [frozenset()]
        self._role_set_codes: dict[frozenset, int] = {frozenset(): 0}
        self._symbols: list[AccessKey] = []
        self._symbol_codes: dict[AccessKey, int] = {}
        # Rows whose subject was constructed with a non-sequential id
        # (tests build exotic subjects); plain dict fallback.
        self._odd_subjects: dict[int, Subject] = {}
        # Observation arena: linked list of interned symbol ids.
        self._obs_sym = _Arena(np.int32, fill=-1)
        self._obs_next = _Arena(np.int32, fill=-1)
        # Lazy column families.
        self._trackers: dict[str, _TrackerColumns] = {}
        self._monitors: dict[object, _MonitorColumn] = {}
        # Monitor products too wide for an int64 encoding (astronomic;
        # falls back to per-row state tuples).
        self._odd_monitors: dict[int, dict[object, tuple]] = {}
        self._handles: "weakref.WeakValueDictionary[int, StoredSession]" = (
            weakref.WeakValueDictionary()
        )
        self._free: list[int] = []
        self._free_lock = threading.Lock()
        self._n = 0  # high-water row mark
        self._resident = 0

    # -- capacity ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._alive.data.size

    def _grow_to(self, capacity: int) -> None:
        for column in self._row_columns:
            column.grow(capacity)
        for tc in self._trackers.values():
            for column in tc.columns():
                column.grow(capacity)
        for mc in self._monitors.values():
            mc.col.grow(capacity)

    def reserve(self, n: int) -> None:
        """Presize every column for ``n`` rows (so bulk loads measure
        their true footprint instead of doubling slack)."""
        if n > self.capacity:
            self._grow_to(n)

    def nbytes(self) -> int:
        """Bytes held by the columns and arenas (the store overhead the
        scale benchmark's per-session gate divides by residency)."""
        total = sum(c.data.nbytes for c in self._row_columns)
        for tc in self._trackers.values():
            total += sum(c.data.nbytes for c in tc.columns())
            if tc.record_events:
                total += (
                    tc.ev_row.data.nbytes
                    + tc.ev_gen.data.nbytes
                    + tc.ev_time.data.nbytes
                    + tc.ev_kind.data.nbytes
                )
        for mc in self._monitors.values():
            total += mc.col.data.nbytes
        total += self._obs_sym.data.nbytes + self._obs_next.data.nbytes
        return total

    @property
    def resident(self) -> int:
        return self._resident

    # -- interning ----------------------------------------------------------

    def _intern_user(self, user: User) -> int:
        code = self._user_codes.get(user)
        if code is None:
            code = len(self._users)
            self._users.append(user)
            self._user_codes[user] = code
        return code

    def _intern_principals(self, principals: frozenset) -> int:
        code = self._principal_codes.get(principals)
        if code is None:
            code = len(self._principal_sets)
            self._principal_sets.append(principals)
            self._principal_codes[principals] = code
        return code

    def _intern_role_set(self, roles: frozenset) -> int:
        code = self._role_set_codes.get(roles)
        if code is None:
            code = len(self._role_sets)
            self._role_sets.append(roles)
            self._role_set_codes[roles] = code
        return code

    def _symbol_code(self, access: AccessKey) -> int:
        code = self._symbol_codes.get(access)
        if code is None:
            access = AccessKey.of(access)
            code = len(self._symbols)
            self._symbols.append(access)
            self._symbol_codes[access] = code
        return code

    def role_set(self, row: int) -> frozenset:
        return self._role_sets[int(self._role_set_id.data[row])]

    def set_role_set(self, row: int, roles: frozenset) -> None:
        self._role_set_id.data[row] = self._intern_role_set(frozenset(roles))

    # -- rows ----------------------------------------------------------------

    def _alloc_row(self) -> int:
        with self._free_lock:
            if self._free:
                return self._free.pop()
        row = self._n
        if row >= self.capacity:
            self._grow_to(max(row + 1, self.capacity * 2))
        self._n = row + 1
        return row

    def open(
        self,
        subject: Subject,
        t: float,
        sid_seq: int,
        subj_seq: int | None = None,
    ) -> int:
        """Open a session row for ``subject`` at ``t``; returns the row."""
        row = self._alloc_row()
        self._start_time.data[row] = t
        self._last_seen.data[row] = t
        self._alive.data[row] = 1
        self._sid_seq.data[row] = sid_seq
        self._user_id.data[row] = self._intern_user(subject.user)
        self._principals_id.data[row] = self._intern_principals(
            subject.principals
        )
        self._role_set_id.data[row] = 0
        self._obs_head.data[row] = -1
        self._obs_tail.data[row] = -1
        self._obs_len.data[row] = 0
        self._obs_ver.data[row] = 0
        if subj_seq is not None and subject.subject_id == f"subject-{subj_seq}":
            self._subj_seq.data[row] = subj_seq
        else:
            self._subj_seq.data[row] = -1
            self._odd_subjects[row] = subject
        self._resident += 1
        return row

    def open_block(
        self,
        t: float,
        sid_seqs,
        subj_seqs,
        user_codes,
        principal_codes,
        role_set_code: int,
    ) -> np.ndarray:
        """Bulk-open ``len(sid_seqs)`` rows at the high-water mark with
        vectorized column fills (the scale benchmark's load path).
        All inputs are parallel integer sequences; interning codes come
        from the scalar helpers.  Returns the opened row indices."""
        n = len(sid_seqs)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        first = self._n
        if first + n > self.capacity:
            self._grow_to(max(first + n, self.capacity * 2))
        rows = np.arange(first, first + n, dtype=np.int64)
        self._n = first + n
        sl = slice(first, first + n)
        self._start_time.data[sl] = t
        self._last_seen.data[sl] = t
        self._alive.data[sl] = 1
        self._sid_seq.data[sl] = np.asarray(sid_seqs, dtype=np.int64)
        self._subj_seq.data[sl] = np.asarray(subj_seqs, dtype=np.int64)
        self._user_id.data[sl] = np.asarray(user_codes, dtype=np.int32)
        self._principals_id.data[sl] = np.asarray(
            principal_codes, dtype=np.int32
        )
        self._role_set_id.data[sl] = role_set_code
        self._obs_head.data[sl] = -1
        self._obs_tail.data[sl] = -1
        self._obs_len.data[sl] = 0
        self._obs_ver.data[sl] = 0
        self._resident += n
        return rows

    def close(self, row: int, gen: int) -> None:
        """Mark a row closed; it is recycled once the last handle dies
        (immediately when none exists)."""
        with self._free_lock:
            if int(self._gen.data[row]) != gen or not self._alive.data[row]:
                return
            self._alive.data[row] = 0
            self._resident -= 1
            if self._handles.get(row) is None:
                self._free_row_locked(row)

    def _on_handle_dead(self, row: int, gen: int) -> None:
        """weakref.finalize hook: recycle a closed row when its last
        handle is collected.  Generation-checked, so a handle from a
        previous occupancy of the row is a no-op."""
        with self._free_lock:
            if int(self._gen.data[row]) == gen and not self._alive.data[row]:
                self._free_row_locked(row)

    def _free_row_locked(self, row: int) -> None:
        """Reset a row and return it to the free list.  Caller holds
        ``_free_lock``.  The generation bump invalidates every stale
        handle, view and pending finalizer for the old occupancy."""
        self._gen.data[row] += 1
        self._sid_seq.data[row] = -1
        self._subj_seq.data[row] = -1
        self._user_id.data[row] = -1
        self._principals_id.data[row] = -1
        self._role_set_id.data[row] = 0
        self._last_seen.data[row] = -math.inf
        self._obs_head.data[row] = -1
        self._obs_tail.data[row] = -1
        self._obs_len.data[row] = 0
        self._obs_ver.data[row] = 0
        self._odd_subjects.pop(row, None)
        self._odd_monitors.pop(row, None)
        for tc in self._trackers.values():
            tc.alloc.data[row] = 0
        for mc in self._monitors.values():
            mc.col.data[row] = -1
        self._free.append(row)

    def register_handle(self, row: int, handle: StoredSession) -> None:
        self._handles[row] = handle
        weakref.finalize(handle, self._on_handle_dead, row, handle._gen)

    def handle_for(self, row: int) -> StoredSession | None:
        return self._handles.get(row)

    def subject_of(self, row: int) -> Subject:
        odd = self._odd_subjects.get(row)
        if odd is not None:
            return odd
        return Subject(
            self._users[int(self._user_id.data[row])],
            self._principal_sets[int(self._principals_id.data[row])],
            subject_id=f"subject-{int(self._subj_seq.data[row])}",
        )

    def row_of_session_id(self, session_id: str) -> int | None:
        """Row of a live session by id — a vectorized scan (no reverse
        index: materialisation by id is an administrative operation,
        and an id→row dict would be the store's single biggest cell)."""
        prefix = "session-"
        if not session_id.startswith(prefix):
            return None
        try:
            seq = int(session_id[len(prefix):])
        except ValueError:
            return None
        n = self._n
        hits = np.nonzero(
            (self._sid_seq.data[:n] == seq) & (self._alive.data[:n] == 1)
        )[0]
        if hits.size == 0:
            return None
        return int(hits[0])

    def alive_rows(self) -> np.ndarray:
        return np.nonzero(self._alive.data[: self._n] == 1)[0]

    def idle_rows(self, now: float | None, idle_for: float) -> tuple[float, np.ndarray]:
        """Live rows idle for at least ``idle_for`` as of ``now``
        (default: the store's own latest activity instant), plus the
        effective ``now`` used."""
        n = self._n
        alive = self._alive.data[:n] == 1
        if not alive.any():
            return (0.0, np.empty(0, dtype=np.int64))
        seen = self._last_seen.data[:n]
        eff_now = float(seen[alive].max()) if now is None else float(now)
        idle = alive & (eff_now - seen >= idle_for)
        return (eff_now, np.nonzero(idle)[0])

    # -- observations --------------------------------------------------------

    def append_observation(self, row: int, access: AccessKey) -> None:
        index = self._obs_sym.append(self._symbol_code(access))
        self._obs_next.append(-1)
        tail = int(self._obs_tail.data[row])
        if tail >= 0:
            self._obs_next.data[tail] = index
        else:
            self._obs_head.data[row] = index
        self._obs_tail.data[row] = index
        self._obs_len.data[row] += 1
        self._obs_ver.data[row] += 1

    def extend_observations(self, row: int, accesses: Iterable[AccessKey]) -> None:
        """Append many observations with one version bump (the
        per-commit-batch invalidation of the memo-churn fix)."""
        appended = 0
        tail = int(self._obs_tail.data[row])
        for access in accesses:
            index = self._obs_sym.append(self._symbol_code(access))
            self._obs_next.append(-1)
            if tail >= 0:
                self._obs_next.data[tail] = index
            else:
                self._obs_head.data[row] = index
            tail = index
            appended += 1
        if appended:
            self._obs_tail.data[row] = tail
            self._obs_len.data[row] += appended
            self._obs_ver.data[row] += 1

    def set_observations(
        self, row: int, accesses: Iterable[AccessKey | tuple[str, str, str]]
    ) -> None:
        """Replace the row's log (the ``observed`` setter / rescind
        path).  Clears the row's monitor states — they were advanced
        over the old history — exactly like the object-backed setter."""
        self._obs_head.data[row] = -1
        self._obs_tail.data[row] = -1
        self._obs_len.data[row] = 0
        self._obs_ver.data[row] += 1
        self.extend_observations(
            row,
            (a if type(a) is AccessKey else AccessKey.of(a) for a in accesses),
        )
        self.clear_monitor_row(row)

    def observed_list(self, row: int) -> list[AccessKey]:
        out: list[AccessKey] = []
        symbols = self._symbols
        sym = self._obs_sym.data
        nxt = self._obs_next.data
        index = int(self._obs_head.data[row])
        while index >= 0:
            out.append(symbols[sym[index]])
            index = int(nxt[index])
        return out

    def rescind_server(self, server: str) -> int:
        """Drop every observation at ``server`` from every live row
        (the coalition-eviction path).  Returns observations removed."""
        removed = 0
        for row in self.alive_rows().tolist():
            if not self._obs_len.data[row]:
                continue
            log = self.observed_list(row)
            kept = [a for a in log if a.server != server]
            if len(kept) != len(log):
                removed += len(log) - len(kept)
                self.set_observations(row, kept)
        return removed

    # -- monitor states ------------------------------------------------------

    def monitor_entry(self, row: int, constraint) -> tuple | None:
        mc = self._monitors.get(constraint)
        if mc is not None:
            value = int(mc.col.data[row])
            if value >= 0:
                return (mc.compiled, mc.decode(value))
        odd = self._odd_monitors.get(row)
        if odd is not None:
            return odd.get(constraint)
        return None

    def init_monitor(self, row: int, constraint, compiled) -> tuple:
        """Initialise a row's monitor cell by folding its observed
        history — the columnar analogue of the object engine's
        ``monitor_cache`` fill."""
        states = compiled.run(self.observed_list(row))
        mc = self._monitors.get(constraint)
        if mc is None:
            product = 1
            for monitor in compiled.monitors:
                product *= monitor.size()
            if product <= 2**62:
                mc = _MonitorColumn(compiled, self.capacity)
                self._monitors[constraint] = mc
            else:  # pragma: no cover - astronomically wide products
                self._odd_monitors.setdefault(row, {})[constraint] = (
                    compiled,
                    states,
                )
                return (compiled, states)
        mc.col.data[row] = mc.encode(states)
        return (mc.compiled, states)

    def monitor_state_id(self, row: int, constraint, table: "TransitionTable") -> int | None:
        """The row's ready-made table state id for ``constraint`` —
        the vector sweep's fast path (no tuple decode/encode).  ``None``
        when the cell is uninitialised or its radix disagrees with the
        table's (then the caller takes the compiled-monitor path)."""
        mc = self._monitors.get(constraint)
        if mc is None or mc.sizes != table.sizes:
            return None
        value = int(mc.col.data[row])
        return value if value >= 0 else None

    def step_monitors_row(self, row: int, access: AccessKey) -> None:
        """Advance every initialised monitor cell of ``row`` by one
        access (the ``observe`` hot path)."""
        for mc in self._monitors.values():
            value = int(mc.col.data[row])
            if value >= 0:
                mc.col.data[row] = mc.encode(
                    mc.compiled.step(mc.decode(value), access)
                )
        odd = self._odd_monitors.get(row)
        if odd is not None:
            for constraint, (compiled, states) in list(odd.items()):
                odd[constraint] = (compiled, compiled.step(states, access))

    def has_monitor_state(self, row: int) -> bool:
        if any(mc.col.data[row] >= 0 for mc in self._monitors.values()):
            return True
        return bool(self._odd_monitors.get(row))

    def monitor_items(self, row: int) -> list[tuple]:
        out = []
        for constraint, mc in self._monitors.items():
            value = int(mc.col.data[row])
            if value >= 0:
                out.append((constraint, (mc.compiled, mc.decode(value))))
        odd = self._odd_monitors.get(row)
        if odd is not None:
            out.extend((c, entry) for c, entry in odd.items())
        return out

    def clear_monitor_row(self, row: int) -> None:
        for mc in self._monitors.values():
            mc.col.data[row] = -1
        self._odd_monitors.pop(row, None)

    def clear_all_monitor_states(self) -> None:
        for mc in self._monitors.values():
            mc.col.data[:] = -1
        self._odd_monitors.clear()

    # -- trackers ------------------------------------------------------------

    def _tracker_columns(self, key: str) -> _TrackerColumns:
        tc = self._trackers.get(key)
        if tc is None:
            tc = _TrackerColumns(self.capacity, self.record_timelines)
            self._trackers[key] = tc
        return tc

    def alloc_tracker(self, row: int, key: str, duration: float) -> None:
        """Allocate one tracker cell in the fresh (inactive) state the
        object tracker's constructor produces."""
        if duration <= 0:
            raise TemporalError(
                f"validity duration must be positive, got {duration}"
            )
        tc = self._tracker_columns(key)
        start = float(self._start_time.data[row])
        tc.alloc.data[row] = 1
        tc.active.data[row] = 0
        tc.anchor.data[row] = start
        tc.consumed0.data[row] = 0.0
        tc.expiry.data[row] = math.inf
        tc.now.data[row] = start
        tc.dur.data[row] = tc.dur_code(duration)

    def tracker_activate_block(
        self, key: str, rows: np.ndarray, t: float, duration: float
    ) -> None:
        """Bulk create-and-activate one tracker key for freshly opened
        rows (start_time == ``t``): the vectorized equivalent of
        ``create_tracker`` + ``activate(t)`` per row."""
        if duration <= 0:
            raise TemporalError(
                f"validity duration must be positive, got {duration}"
            )
        tc = self._tracker_columns(key)
        code = tc.dur_code(duration)
        tc.alloc.data[rows] = 1
        tc.active.data[rows] = 1
        tc.anchor.data[rows] = t
        tc.consumed0.data[rows] = 0.0
        tc.now.data[rows] = t
        tc.expiry.data[rows] = (
            math.inf if math.isinf(duration) else t + duration
        )
        tc.dur.data[rows] = code
        if tc.record_events:
            gens = self._gen.data[rows]
            # Per-row replay order is active-on then valid-on at t —
            # appending the whole active block first preserves it.
            for kind in (_EV_ACTIVE_ON, _EV_VALID_ON):
                for row, gen in zip(rows.tolist(), gens.tolist()):
                    tc.ev_row.append(row)
                    tc.ev_gen.append(gen)
                    tc.ev_time.append(t)
                    tc.ev_kind.append(kind)
