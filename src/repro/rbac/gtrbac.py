"""GTRBAC — the generalised temporal RBAC baseline (Joshi et al.,
cited in the paper's Section 7).

GTRBAC extends TRBAC "by incorporating a set of language constructs for
the specification of various temporal constraints on roles, user-role
assignments and role-permission assignments".  We implement that
faithful subset:

* periodic **role enabling** (as in :mod:`repro.rbac.trbac`);
* periodic **user-role assignment** windows — a user holds a role only
  inside the window;
* periodic **role-permission assignment** windows — a role grants a
  permission only inside the window;
* per-activation **duration caps** — a role activation expires after a
  maximum active span (GTRBAC's duration constraint, still anchored to
  the absolute activation instant).

The point of carrying this baseline: even with the richer constructs,
*every* check reads an absolute local clock, so all of TRBAC's
skew-sensitivity remains; and temporal state still attaches to roles
and assignments, not to the mobile object's cross-server behaviour —
spatial requirements (Example 3.5, Figure 1 ordering) stay
inexpressible.  Both points are exercised in ``tests/test_gtrbac.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coalition.clock import ServerClock
from repro.errors import RbacError
from repro.rbac.trbac import PeriodicInterval
from repro.traces.trace import AccessKey

__all__ = ["GTRBACPolicy", "GTRBACEngine", "Activation"]

_ALWAYS = None  # sentinel: no window => always


@dataclass(frozen=True)
class Activation:
    """A role activation: who, which role, and the local time it began
    (GTRBAC's duration constraints are anchored here)."""

    user: str
    role: str
    started_at: float


class GTRBACPolicy:
    """Roles, permissions and the three families of periodic windows."""

    def __init__(self) -> None:
        self._role_enabling: dict[str, PeriodicInterval | None] = {}
        self._assignment_windows: dict[tuple[str, str], PeriodicInterval] = {}
        self._grant_windows: dict[tuple[str, str], PeriodicInterval] = {}
        self._grants: dict[str, list[tuple[str, str, str]]] = {}
        self._assignments: set[tuple[str, str]] = set()
        self._duration_caps: dict[str, float] = {}

    # -- declarations ------------------------------------------------------

    def add_role(
        self,
        role: str,
        enabling: PeriodicInterval | None = None,
        max_activation: float | None = None,
    ) -> None:
        if role in self._role_enabling:
            raise RbacError(f"duplicate role {role!r}")
        self._role_enabling[role] = enabling
        self._grants[role] = []
        if max_activation is not None:
            if max_activation <= 0:
                raise RbacError("activation duration cap must be positive")
            self._duration_caps[role] = max_activation

    def assign_user(
        self, user: str, role: str, window: PeriodicInterval | None = None
    ) -> None:
        """UA entry, optionally valid only inside ``window``."""
        self._require_role(role)
        self._assignments.add((user, role))
        if window is not None:
            self._assignment_windows[(user, role)] = window

    def grant(
        self,
        role: str,
        op: str = "*",
        resource: str = "*",
        server: str = "*",
        window: PeriodicInterval | None = None,
    ) -> None:
        """PA entry, optionally valid only inside ``window``.

        The window applies to every pattern granted to the role with the
        same (role, name) key; for simplicity each grant carries its own
        optional window keyed by its pattern string."""
        self._require_role(role)
        self._grants[role].append((op, resource, server))
        if window is not None:
            self._grant_windows[(role, f"{op}|{resource}|{server}")] = window

    def _require_role(self, role: str) -> None:
        if role not in self._role_enabling:
            raise RbacError(f"unknown role {role!r}")

    # -- queries -----------------------------------------------------------

    def role_enabled(self, role: str, local_time: float) -> bool:
        self._require_role(role)
        window = self._role_enabling[role]
        return window is None or window.enabled_at(local_time)

    def assignment_valid(self, user: str, role: str, local_time: float) -> bool:
        if (user, role) not in self._assignments:
            return False
        window = self._assignment_windows.get((user, role))
        return window is None or window.enabled_at(local_time)

    def matching_grants(
        self, role: str, access: AccessKey, local_time: float
    ) -> bool:
        """Does ``role`` grant ``access`` at ``local_time`` (respecting
        per-grant windows)?"""
        for op, resource, server in self._grants.get(role, ()):
            if (
                op in ("*", access.op)
                and resource in ("*", access.resource)
                and server in ("*", access.server)
            ):
                window = self._grant_windows.get((role, f"{op}|{resource}|{server}"))
                if window is None or window.enabled_at(local_time):
                    return True
        return False

    def activation_alive(self, activation: Activation, local_time: float) -> bool:
        """GTRBAC duration constraint: the activation is still within
        its role's cap (measured on the same absolute clock)."""
        cap = self._duration_caps.get(activation.role)
        return cap is None or (local_time - activation.started_at) < cap


class GTRBACEngine:
    """Decides accesses under GTRBAC semantics on the serving server's
    local clock (the only clock a coalition server has)."""

    def __init__(self, policy: GTRBACPolicy):
        self.policy = policy

    def decide(
        self,
        activation: Activation,
        access: AccessKey | tuple[str, str, str],
        global_time: float,
        clock: ServerClock | None = None,
    ) -> bool:
        access = AccessKey(*access)
        local = (clock or ServerClock()).local_time(global_time)
        policy = self.policy
        return (
            policy.assignment_valid(activation.user, activation.role, local)
            and policy.role_enabled(activation.role, local)
            and policy.activation_alive(activation, local)
            and policy.matching_grants(activation.role, access, local)
        )
