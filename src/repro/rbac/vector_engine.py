"""Batched decision sweeps over compiled tables and breakpoint arrays.

The scalar :meth:`~repro.rbac.engine.AccessControlEngine.decide` is
O(1) warm but pays interpreted-Python cost per decision: a candidate
walk, a monitor dict step, a validity-tracker query and a fresh
provenance record each time.  For a *batch* of requests over one
session most of that work is invariant:

* the session's observed history — and with it every cached monitor
  state — is frozen for the whole batch (no ``observe`` happens), so
  the **spatial verdict is a constant per (access, candidate)**:
  one gather into the :class:`~repro.srac.compiled.TransitionTable`
  plus one live-mask read;
* each validity tracker's state function is piecewise constant with at
  most one breakpoint (:meth:`~repro.temporal.validity.ValidityTracker.breakpoints`),
  so the **temporal verdicts for a whole time vector** are one
  ``np.searchsorted`` per (candidate, access-group);
* provenance records depend only on the access, the candidate index
  and the vector of temporal state codes — a handful of distinct
  values per group — so whole ``Decision`` prototypes are memoised and
  per-element decisions are cheap clones differing only in ``time``.

The sweep is organised **prepare → commit**:

:func:`prepare_sweep` does all the work without mutating any
session-visible state (engine/process caches may warm — they are
semantically invisible) and returns ``None`` whenever the batch is not
eligible for the vector path.  The caller then falls back to the
scalar loop, which reproduces the exact scalar behaviour *including*
mid-batch exceptions.  Ineligible batches: explicit histories,
disclosed programs, ``observe_granted``, owner coordination scope,
disabled SRAC caches, non-monotone time steps, query times behind a
tracker's clock, monitor products over the table budgets, or an access
outside a compiled alphabet (:class:`~repro.errors.AlphabetError`).

:func:`commit_sweep` applies the side effects: validity trackers of
every examined candidate are created/advanced exactly as the scalar
candidate loop would have left them (one closed-form advance to the
maximum examined instant replays the same state, the same expiry
switch at the same recorded instant), engine counters tick, and the
decisions are appended to the audit log in stream order.

Decisions and their :class:`~repro.obs.provenance.DecisionProvenance`
are **bit-identical** to the scalar engine's (property-tested in
``tests/test_vector_engine.py``); the only observable difference is
that batched decisions do not emit sampled ``engine.decide`` tracing
spans (``engine.decisions`` metrics still count them).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import AlphabetError
from repro.obs import OBS
from repro.obs.provenance import CandidateProvenance, DecisionProvenance
from repro.rbac.audit import Decision
from repro.rbac.engine import _constraint_source
from repro.temporal.validity import CODE_INACTIVE, CODE_VALID, STATE_CODES
from repro.traces.trace import AccessKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rbac.engine import AccessControlEngine, Session

__all__ = [
    "PreparedSweep",
    "prepare_sweep",
    "commit_sweep",
    "sweep_interleaved",
]

_NO_CANDIDATE_REASON = "no active role provides a matching permission"


def _fill(
    decisions: list,
    proto: Decision,
    positions,
    idx_list: Sequence[int],
    times: Sequence[float],
) -> None:
    """Clone ``proto`` into ``decisions`` at each position's instant.

    This loop *is* the vector path's per-decision cost.  ``Decision``
    is a frozen dataclass; cloning through ``__dict__`` skips the
    ten-field ``__init__`` and the frozen-setattr guard — the clones
    are indistinguishable (same fields, same equality/hash) and differ
    from the prototype only in ``time``.
    """
    new = Decision.__new__
    proto_dict = proto.__dict__
    for p in positions:
        d = new(Decision)
        dd = d.__dict__
        dd.update(proto_dict)
        i = idx_list[p]
        dd["time"] = times[i]
        decisions[i] = d


class PreparedSweep:
    """The pure phase of a batched sweep: the finished decisions plus
    the side effects :func:`commit_sweep` must apply."""

    __slots__ = (
        "engine",
        "session",
        "decisions",
        "advances",
        "live_hits_add",
        "n",
        "granted",
        "t_last",
    )

    def __init__(self, engine: "AccessControlEngine", session: "Session"):
        self.engine = engine
        self.session = session
        self.decisions: list[Decision] = []
        #: tracker key -> (permission, max examined instant)
        self.advances: dict[str, tuple] = {}
        self.live_hits_add = 0
        self.n = 0
        self.granted = 0
        #: Final decision instant of the batch (idle-clock commit).
        self.t_last = 0.0


def prepare_sweep(
    engine: "AccessControlEngine",
    session: "Session",
    accesses: Sequence[AccessKey],
    times: Sequence[float],
) -> PreparedSweep | None:
    """Decide a request stream for one session without side effects.

    ``accesses`` must already be ``AccessKey`` instances and ``times``
    the per-request decision instants (nondecreasing — the caller built
    them by the same ``clock += dt`` accumulation the scalar loop
    uses).  Returns ``None`` when any part of the batch needs the
    scalar path; in that case no session state was touched.
    """
    n = len(accesses)
    if n == 0:
        return PreparedSweep(engine, session)
    if engine.coordination_scope != "subject" or not engine.use_srac_caches:
        return None
    if times[0] < session.start_time:
        return None

    prep = PreparedSweep(engine, session)
    prep.n = n
    prep.t_last = float(times[-1])
    prep.decisions = [None] * n  # type: ignore[list-item]
    decisions = prep.decisions
    times_arr = np.asarray(times, dtype=np.float64)
    subject_id = session.subject.subject_id
    history_len = session.observed_len()
    # Columnar fast path: a store-backed session's monitor cells *are*
    # table state ids — no tuple decode/encode per candidate.
    store = getattr(session, "_store", None)
    store_row = session._row if store is not None else -1
    # One epoch read per sweep: the membership epoch cannot change
    # mid-batch under the shard lock, so this matches the scalar loop's
    # per-decision read bit for bit.
    epoch = engine._current_epoch()

    groups: dict[AccessKey, list[int]] = {}
    for i, access in enumerate(accesses):
        g = groups.get(access)
        if g is None:
            groups[access] = [i]
        else:
            g.append(i)

    for access, idx_list in groups.items():
        candidates = engine._candidates(session, access)
        k = len(candidates)
        m = len(idx_list)
        ts = times_arr if m == n else times_arr[idx_list]

        if k == 0:
            proto = Decision(
                subject_id=subject_id,
                access=access,
                granted=False,
                time=0.0,
                reason=_NO_CANDIDATE_REASON,
                provenance=DecisionProvenance(
                    kind="no-candidate",
                    history_mode="incremental",
                    history_len=history_len,
                    epoch=epoch,
                ),
            )
            _fill(decisions, proto, range(m), idx_list, times)
            continue

        # Spatial verdicts: constant per (access, candidate) for the
        # whole batch (the observed history is frozen) — one table
        # gather each.  Bail to scalar when a product is over budget.
        spatial: list[bool] = []
        ctexts: list[str | None] = []
        for _role, permission in candidates:
            constraint = permission.spatial_constraint
            if constraint is None:
                spatial.append(True)
                ctexts.append(None)
                continue
            _compiled, universe, live = engine._extension_entry(
                constraint, access
            )
            if live is None:
                return None
            table = engine._extension_table(constraint, access, universe)
            if table is None:
                return None
            try:
                symbol = table.intern(access)
            except AlphabetError:
                return None
            state_id = (
                store.monitor_state_id(store_row, constraint, table)
                if store is not None
                else None
            )
            if state_id is None:
                _, states = engine._cached_monitors(session, constraint)
                state_id = table.encode(states)
            successor = int(table.trans[state_id, symbol])
            spatial.append(bool(table.live[successor]))
            ctexts.append(_constraint_source(constraint))

        # Temporal state codes per candidate over the group's time
        # vector: one searchsorted against the tracker's breakpoints.
        # side="right" evaluates exactly the scalar `t >= expiry`.
        codes_mat = np.empty((k, m), dtype=np.uint8)
        tracker_keys: list[str] = []
        for j, (_role, permission) in enumerate(candidates):
            key = engine._tracker_key(permission)
            tracker_keys.append(key)
            tracker = session.trackers.get(key)
            if tracker is None:
                # The scalar path would lazily create an INACTIVE
                # tracker; creation is deferred to commit.
                codes_mat[j, :] = CODE_INACTIVE
            else:
                if ts[0] < tracker.now:
                    return None
                codes_mat[j, :] = tracker.state_codes_at(ts)

        # Candidate-major sweep: candidate j grants the still-undecided
        # requests whose spatial verdict holds and whose temporal code
        # is VALID — the scalar first-grant short-circuit, batched.
        undecided = np.ones(m, dtype=bool)
        granted_at = np.full(m, -1, dtype=np.int32)
        for j in range(k):
            if spatial[j]:
                ok = undecided & (codes_mat[j] == CODE_VALID)
                if ok.any():
                    granted_at[ok] = j
                    undecided &= ~ok

        # Commit bookkeeping: candidate j was *examined* by a request
        # unless an earlier candidate granted it, exactly the scalar
        # loop's prefix.  Examined candidates pin their tracker to the
        # latest examined instant and count a live-set hit each.
        # (Plain lists: the groups a micro-batched service drains are
        # small enough that numpy fixed costs dominate masked reductions.)
        granted_list = granted_at.tolist()
        ts_list = ts.tolist()
        for j, (_role, permission) in enumerate(candidates):
            if j == 0:
                # Every request examines the first candidate.
                count = m
                t_max = max(ts_list)
            else:
                examined = [
                    p for p, g in enumerate(granted_list) if g == -1 or g >= j
                ]
                count = len(examined)
                if count == 0:
                    continue
                t_max = max(ts_list[p] for p in examined)
            if permission.spatial_constraint is not None:
                prep.live_hits_add += count
            key = tracker_keys[j]
            previous = prep.advances.get(key)
            if previous is None or t_max > previous[1]:
                prep.advances[key] = (permission, t_max)

        # Grants: one Decision prototype per granting candidate.
        prep.granted += m - granted_list.count(-1)
        for j in sorted(set(granted_list) - {-1}):
            role, permission = candidates[j]
            record = CandidateProvenance(
                role=role.name,
                permission=permission.name,
                constraint=ctexts[j],
                spatial_ok=True,
                temporal_ok=True,
                temporal_state=STATE_CODES[CODE_VALID].value,
            )
            proto = Decision(
                subject_id=subject_id,
                access=access,
                granted=True,
                time=0.0,
                role=role.name,
                permission=permission.name,
                spatial_ok=True,
                temporal_ok=True,
                provenance=DecisionProvenance(
                    kind="granted",
                    candidates=(record,),
                    history_mode="incremental",
                    history_len=history_len,
                    epoch=epoch,
                ),
            )
            winners = [p for p, g in enumerate(granted_list) if g == j]
            positions = range(m) if len(winners) == m else winners
            _fill(decisions, proto, positions, idx_list, times)

        # Denials examine every candidate; the provenance depends only
        # on the column of temporal codes, of which a k-candidate group
        # has at most k+1 distinct values — build one prototype per
        # distinct code column and clone the rest.
        denied_positions = [p for p, g in enumerate(granted_list) if g == -1]
        if denied_positions:
            foreign = engine._foreign_servers(session, access, None)
            columns = codes_mat.T[denied_positions]  # (denied, k)
            # Group identical code columns by hand: the service's
            # micro-batches make these groups small, where
            # ``np.unique(axis=0)`` costs more than the whole sweep.
            uniq: list[tuple[int, ...]] = []
            uniq_index: dict[tuple[int, ...], int] = {}
            inverse: list[int] = []
            for col in map(tuple, columns.tolist()):
                g = uniq_index.get(col)
                if g is None:
                    g = uniq_index[col] = len(uniq)
                    uniq.append(col)
                inverse.append(g)
            protos: list[Decision] = []
            for row in uniq:
                records = []
                last_reason = ""
                for j, (role, permission) in enumerate(candidates):
                    code = int(row[j])
                    records.append(
                        CandidateProvenance(
                            role=role.name,
                            permission=permission.name,
                            constraint=ctexts[j],
                            spatial_ok=spatial[j],
                            temporal_ok=code == CODE_VALID,
                            temporal_state=STATE_CODES[code].value,
                        )
                    )
                    if not spatial[j]:
                        last_reason = (
                            f"spatial constraint of {permission.name!r} "
                            f"cannot be satisfied"
                        )
                    else:
                        last_reason = (
                            f"permission {permission.name!r} is "
                            f"{STATE_CODES[code].value}"
                        )
                failing = records[-1]
                protos.append(
                    Decision(
                        subject_id=subject_id,
                        access=access,
                        granted=False,
                        time=0.0,
                        role=failing.role,
                        permission=failing.permission,
                        spatial_ok=failing.spatial_ok,
                        temporal_ok=failing.temporal_ok,
                        reason=last_reason,
                        provenance=DecisionProvenance(
                            kind=(
                                "spatial"
                                if not failing.spatial_ok
                                else "temporal"
                            ),
                            candidates=tuple(records),
                            history_mode="incremental",
                            history_len=history_len,
                            foreign_servers=foreign,
                            epoch=epoch,
                        ),
                    )
                )
            proto_dicts = [proto.__dict__ for proto in protos]
            new = Decision.__new__
            for p, g in zip(denied_positions, inverse):
                d = new(Decision)
                dd = d.__dict__
                dd.update(proto_dicts[g])
                i = idx_list[p]
                dd["time"] = times[i]
                decisions[i] = d

    return prep


def sweep_interleaved(
    engine: "AccessControlEngine",
    entries: Sequence[tuple["Session", AccessKey, float]],
) -> list[Decision] | None:
    """Sweep an arrival-ordered, interleaved multi-session run.

    ``entries`` is a stream of ``(session, access, t)`` triples in
    arrival order, every one already *vector-eligible on its face*
    (incremental history, no disclosed program, no ``observe_granted``
    feedback) — the :class:`~repro.service.service.DecisionService`
    drain loop filters those out before calling.  The run is regrouped
    per session preserving per-session order; sessions are independent
    under subject scope, so regrouping cannot change any verdict.  The
    sweeps commit only if **every** group prepares — otherwise no
    session-visible state has been touched, ``None`` is returned (one
    vector fallback counted per entry) and the caller replays the run
    through the scalar loop.  The audit log receives the decisions in
    arrival order, exactly as the scalar per-request loop would have
    recorded them.
    """
    n = len(entries)
    if n == 0:
        return []
    by_session: dict[int, tuple["Session", list[int]]] = {}
    for i, (session, _access, _t) in enumerate(entries):
        entry = by_session.get(id(session))
        if entry is None:
            by_session[id(session)] = (session, [i])
        else:
            entry[1].append(i)
    preps: list[tuple[PreparedSweep, list[int]]] = []
    for session, idx_list in by_session.values():
        times = [entries[i][2] for i in idx_list]
        # Per-session monotonicity is all a sweep needs (trackers are
        # per session); the global stream may interleave clocks freely.
        if any(b < a for a, b in zip(times, times[1:])):
            engine._vector_fallbacks += n
            return None
        prep = prepare_sweep(
            engine, session, [entries[i][1] for i in idx_list], times
        )
        if prep is None:
            engine._vector_fallbacks += n
            return None
        preps.append((prep, idx_list))
    decisions: list[Decision] = [None] * n  # type: ignore[list-item]
    granted = 0
    for prep, idx_list in preps:
        swept = commit_sweep(prep, record_audit=False)
        granted += prep.granted
        for local, i in enumerate(idx_list):
            decisions[i] = swept[local]
    engine.audit.record_many(decisions, granted=granted)
    engine._vector_decisions += n
    return decisions


def commit_sweep(prep: PreparedSweep, record_audit: bool = True) -> list[Decision]:
    """Apply a prepared sweep's side effects and return its decisions.

    Tracker advancement replays what the scalar candidate loop did:
    each examined tracker is (created if needed and) advanced to the
    latest instant at which it was examined — under closed-form accrual
    the resulting tracker state *and* the recorded validity timeline
    (the expiry switch fires at the same precomputed instant) are
    identical to the scalar query-by-query sequence.

    With ``record_audit=False`` the caller takes over audit recording
    (``decide_batch_many`` interleaves several sessions' decisions back
    into global stream order first).
    """
    engine = prep.engine
    for _key, (permission, t_max) in prep.advances.items():
        engine._tracker(prep.session, permission).state(t_max)
    if prep.n:
        prep.session.touch(prep.t_last)
    engine._live_hits += prep.live_hits_add
    if OBS.enabled:
        # Metrics count every decision; the sampled per-decision spans
        # are a scalar-path feature (documented in the module docstring).
        engine._obs_decisions += prep.n
    if record_audit:
        engine.audit.record_many(prep.decisions, granted=prep.granted)
    return prep.decisions
