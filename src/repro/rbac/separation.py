"""Separation-of-duty constraints (library extension).

The paper's constraint machinery is spatial/temporal; classic RBAC
deployments also need static and dynamic separation of duty, and the
paper's future work ("how to classify the temporal permissions")
presupposes richer constraint sets.  We provide the two ANSI-RBAC
forms:

* :class:`SSDConstraint` — *static*: no user may be **assigned**
  ``cardinality`` or more roles from the conflicting set;
* :class:`DSDConstraint` — *dynamic*: no session may **activate**
  ``cardinality`` or more roles from the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.errors import RbacError
from repro.rbac.model import Role

__all__ = ["SSDConstraint", "DSDConstraint"]


@dataclass(frozen=True)
class _SeparationConstraint:
    """Common shape: a conflicting role set and a cardinality ≥ 2."""

    name: str
    roles: FrozenSet[Role]
    cardinality: int = 2

    def __post_init__(self) -> None:
        object.__setattr__(self, "roles", frozenset(self.roles))
        if not self.name:
            raise RbacError("separation constraint name must be non-empty")
        if self.cardinality < 2:
            raise RbacError("separation cardinality must be at least 2")
        if len(self.roles) < self.cardinality:
            raise RbacError(
                f"constraint {self.name!r}: role set smaller than cardinality"
            )

    def violated_by(self, roles: Iterable[Role]) -> bool:
        """Would holding/activating ``roles`` violate the constraint?"""
        return len(self.roles & set(roles)) >= self.cardinality


@dataclass(frozen=True)
class SSDConstraint(_SeparationConstraint):
    """Static separation of duty: restricts user-role *assignment*
    (checked against the inheritance closure of assigned roles)."""


@dataclass(frozen=True)
class DSDConstraint(_SeparationConstraint):
    """Dynamic separation of duty: restricts role *activation* within
    one session."""
