"""Audit log of access-control decisions.

Every decision the engine takes — grant or denial, with the spatial and
temporal verdicts that produced it — is appended here, giving the
security officer the evidence trail the coalition setting demands
(decisions at one server justified by history from others).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.obs.provenance import DecisionProvenance
from repro.traces.trace import AccessKey

__all__ = ["Decision", "AuditLog"]


@dataclass(frozen=True)
class Decision:
    """One access-control decision (the output of Eq. 3.1 + Eq. 4.1).

    ``permission``/``role`` name the pair that granted the access, or
    the last candidate examined when denied.  ``reason`` is a short
    human-readable explanation of denials ("no matching permission",
    "spatial constraint unsatisfiable", "validity duration expired",
    ...).  ``provenance`` is the structured explain record
    (:class:`~repro.obs.provenance.DecisionProvenance`): every denial
    produced by the engine carries one naming the failing SRAC clause
    or the Eq. 4.1 temporal state.
    """

    subject_id: str
    access: AccessKey
    granted: bool
    time: float
    role: str | None = None
    permission: str | None = None
    spatial_ok: bool | None = None
    temporal_ok: bool | None = None
    reason: str = ""
    provenance: DecisionProvenance | None = None


class AuditLog:
    """Append-only decision log with simple query helpers.

    ``granted_count``/``denied_count`` are maintained on every
    ``record`` — always on, independent of the observability switch —
    so outcome totals are O(1) reads (the engine's metrics collector
    and :meth:`grant_rate` use them instead of scanning the log)."""

    def __init__(self) -> None:
        self._decisions: list[Decision] = []
        self.granted_count = 0
        self.denied_count = 0

    def record(self, decision: Decision) -> None:
        self._decisions.append(decision)
        if decision.granted:
            self.granted_count += 1
        else:
            self.denied_count += 1

    def record_many(
        self, decisions: Iterable[Decision], granted: int | None = None
    ) -> None:
        """Append a batch of decisions in order — one extend + one
        counter pass instead of a per-decision call (the vectorized
        sweep's audit path).  Callers that already know the batch's
        grant count pass it via ``granted`` to skip the pass."""
        batch = decisions if isinstance(decisions, list) else list(decisions)
        self._decisions.extend(batch)
        if granted is None:
            granted = sum(d.granted for d in batch)
        self.granted_count += granted
        self.denied_count += len(batch) - granted

    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[Decision]:
        return iter(self._decisions)

    def decisions(
        self, predicate: Callable[[Decision], bool] | None = None
    ) -> list[Decision]:
        if predicate is None:
            return list(self._decisions)
        return [d for d in self._decisions if predicate(d)]

    def denials(self) -> list[Decision]:
        return self.decisions(lambda d: not d.granted)

    def grants(self) -> list[Decision]:
        return self.decisions(lambda d: d.granted)

    def for_subject(self, subject_id: str) -> list[Decision]:
        return self.decisions(lambda d: d.subject_id == subject_id)

    def grant_rate(self) -> float:
        """Fraction of decisions that were grants (0 for an empty log)."""
        if not self._decisions:
            return 0.0
        return self.granted_count / len(self._decisions)
