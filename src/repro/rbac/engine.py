"""The coordinated access-control decision engine.

This is the paper's extended RBAC (Eq. 3.1 + Eq. 4.1) as an executable
object: authenticate users into sessions, activate roles (under DSD),
and decide access requests by searching the subject's active roles for
a permission that (a) matches the access, (b) whose spatial constraint
is still satisfiable given the object's proved history — and remaining
program when known — and (c) is temporally **valid** (activation budget
not exhausted, per the configured base-time scheme)::

    active(perm) = true  iff  ∃r ∈ AR(s): perm ∈ RP(r)
                          ∧ check(P, C) = true          (Eq. 3.1)
    valid(perm, t) = 1   iff  active(perm, t) = 1
                          ∧ ∫ valid(perm, u) du ≤ dur(perm)   (Eq. 4.1)

Every decision is recorded in the :class:`~repro.rbac.audit.AuditLog`.
"""

from __future__ import annotations

import itertools
import time
import weakref
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

import repro.rbac.model as rbac_model
from repro.errors import AccessDenied, ConstraintError, RbacError
from repro.obs import OBS, RECORDER, REGISTRY
from repro.obs.provenance import CandidateProvenance, DecisionProvenance
from repro.rbac.audit import AuditLog, Decision
from repro.rbac.model import Permission, Role, Subject
from repro.rbac.policy import Policy
from repro.rbac.session_store import SessionStore, StoredSession
from repro.sral.ast import Program
from repro.srac.ast import Constraint, constraint_alphabet
from repro.srac.checker import check_program, satisfiable_extension_states
from repro.srac.compiled import compile_table
from repro.srac.monitors import CompiledConstraint, compile_constraint
from repro.srac.printer import unparse_constraint
from repro.srac.reachability import CacheStats, cache_stats, live_set
from repro.temporal.aggregation import PermissionClassifier
from repro.temporal.validity import PermissionState, Scheme, ValidityTracker
from repro.traces.trace import AccessKey, Trace

__all__ = [
    "Session",
    "AccessControlEngine",
    "EngineCacheStats",
    "DECIDE_SPAN_SAMPLE",
]

_session_counter = itertools.count(1)

#: One in this many decisions draws a wall-clock timing sample and
#: records an ``engine.decide`` span when observability is enabled
#: (power of two; sampling keeps the warm decide path inside the ≤5 %
#: instrumentation-overhead budget gated by
#: ``benchmarks/bench_obs_overhead.py`` — unsampled decisions pay two
#: integer increments and one modulo, no clock reads).
DECIDE_SPAN_SAMPLE = 64

# Memoised SRAC source text per constraint (provenance records carry
# the text; rendering is ~µs-scale, far too slow for the warm path).
# Plain dict: get/set are GIL-atomic, a racing duplicate render is
# harmless, and constraints are interned policy objects so the table
# stays small.
_constraint_text: dict[Constraint, str] = {}


def _constraint_source(constraint: Constraint) -> str:
    text = _constraint_text.get(constraint)
    if text is None:
        try:
            text = unparse_constraint(constraint)
        except ConstraintError:
            # Synthesised AST nodes (tests build constraints directly)
            # may not be expressible in SRAC concrete syntax; the repr
            # still names the failing clause.
            text = repr(constraint)
        _constraint_text[constraint] = text
    return text


@dataclass
class Session:
    """A subject's login session with its activated roles and the
    per-permission validity trackers."""

    subject: Subject
    start_time: float
    session_id: str = field(default="")
    active_roles: set[Role] = field(default_factory=set)
    trackers: dict[str, ValidityTracker] = field(default_factory=dict)
    #: Per-constraint compiled monitors advanced over ``observed``.
    monitor_cache: dict = field(default_factory=dict)
    # List-backed observation log: appends are O(1) (tuple
    # concatenation was quadratic over a session lifetime); the
    # ``observed`` property memoises a tuple view for external readers.
    _observed: list[AccessKey] = field(default_factory=list, repr=False)
    _observed_view: tuple[AccessKey, ...] | None = field(
        default=None, repr=False, compare=False
    )
    #: Latest instant the engine saw activity for this session
    #: (authentication or a decision) — the idle-expiry clock.
    last_seen: float | None = field(default=None, repr=False, compare=False)
    #: How many times the ``observed`` tuple view was materialised —
    #: the regression meter of the memo-churn fix (tests assert batch
    #: paths rebuild at most once per batch, not once per item).
    view_rebuilds: int = field(default=0, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.session_id:
            self.session_id = f"session-{next(_session_counter)}"
        if self.last_seen is None:
            self.last_seen = self.start_time

    @property
    def observed(self) -> tuple[AccessKey, ...]:
        """Accesses the engine has observed for this session (fed by
        :meth:`AccessControlEngine.observe`) — the basis of incremental
        spatial checking."""
        if self._observed_view is None:
            self._observed_view = tuple(self._observed)
            self.view_rebuilds += 1
        return self._observed_view

    @observed.setter
    def observed(self, value: Iterable[AccessKey | tuple[str, str, str]]) -> None:
        self._observed = [
            a if type(a) is AccessKey else AccessKey.of(a) for a in value
        ]
        self._observed_view = None
        # Cached monitor states were advanced over the old history.
        self.monitor_cache.clear()

    def record_observation(self, access: AccessKey) -> None:
        """Append one access to the observation log (O(1) amortised)."""
        self._observed.append(AccessKey.of(access))
        self._observed_view = None

    def record_observations(self, accesses: Iterable[AccessKey]) -> None:
        """Append a batch with a single view invalidation."""
        self._observed.extend(AccessKey.of(a) for a in accesses)
        self._observed_view = None

    def observed_len(self) -> int:
        """History length without materialising the tuple view."""
        return len(self._observed)

    def touch(self, t: float) -> None:
        if t > self.last_seen:
            self.last_seen = t

    def role_set(self) -> frozenset:
        """The active roles as a frozenset (the columnar handle returns
        its interned instance; here it is a plain copy)."""
        return frozenset(self.active_roles)

    def create_tracker(self, key: str, duration: float, scheme) -> ValidityTracker:
        tracker = ValidityTracker(
            duration=duration, scheme=scheme, start_time=self.start_time
        )
        self.trackers[key] = tracker
        return tracker

    def advance_monitors(self, access: AccessKey) -> None:
        """Step every cached constraint monitor by one access."""
        for constraint, (compiled, states) in list(self.monitor_cache.items()):
            self.monitor_cache[constraint] = (
                compiled,
                compiled.step(states, access),
            )

    def monitor_entry(self, constraint):
        return self.monitor_cache.get(constraint)

    def init_monitor(self, constraint, compiled):
        # Fold the list-backed log directly: the tuple view is a
        # reader-facing memo and need not be rebuilt here.
        entry = (compiled, compiled.run(self._observed))
        self.monitor_cache[constraint] = entry
        return entry

    def clear_monitor_states(self) -> None:
        self.monitor_cache.clear()


@dataclass(frozen=True)
class EngineCacheStats:
    """Snapshot of the engine's caching layers for one report:
    candidate-permission lookups (hits/misses of the per
    (policy-version, role-set, access) cache) plus the process-level
    SRAC compile/reachability counters
    (:class:`repro.srac.reachability.CacheStats`)."""

    candidate_hits: int
    candidate_misses: int
    extension_entries: int
    #: Spatial checks answered by an O(1) live-set membership lookup.
    live_hits: int
    #: Spatial checks that fell back to the BFS (product over budget).
    live_fallbacks: int
    srac: CacheStats
    #: Batched decisions taken by the vectorized sweep.
    vector_decisions: int = 0
    #: Batched decisions that fell back to the scalar loop.
    vector_fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        out = {
            "candidate_hits": self.candidate_hits,
            "candidate_misses": self.candidate_misses,
            "extension_entries": self.extension_entries,
            "live_hits": self.live_hits,
            "live_fallbacks": self.live_fallbacks,
            "vector_decisions": self.vector_decisions,
            "vector_fallbacks": self.vector_fallbacks,
        }
        out.update(self.srac.as_dict())
        return out


class AccessControlEngine:
    """Evaluates access requests against a :class:`Policy` with
    coordinated spatio-temporal constraints.

    Parameters
    ----------
    policy:
        The security officer's declarations.
    scheme:
        Base-time scheme for validity budgets
        (:data:`~repro.temporal.validity.Scheme.WHOLE_EXECUTION` or
        :data:`~repro.temporal.validity.Scheme.PER_SERVER`).
    extension_alphabet:
        Universe of accesses used by the grant-time satisfiability
        search when the requester's remaining program is unknown
        (defaults to the accesses named by the constraint plus the
        requested one).
    classifier:
        Optional :class:`~repro.temporal.aggregation.PermissionClassifier`
        (the paper's future-work extension): permissions in one class
        share a single aggregated validity budget.
    coordination_scope:
        ``"subject"`` (default) — spatial constraints are evaluated
        against the requesting mobile object's own history.
        ``"owner"`` — against the *combined* observed history of every
        session of the same user: "permissions may be granted based not
        only on the requesting subject, but also on the previous access
        actions of the device **and even of its companions**"
        (Section 1).  Owner scope applies to incremental decisions
        (``history=None``), where the engine is the history's source of
        truth; explicit histories are always taken as given.
    use_srac_caches:
        Enable the shared compile cache and precomputed live sets on
        the spatial hot path (the default).  ``False`` forces a fresh
        compilation and explicit BFS per decision — the pre-cache
        behaviour, kept for equivalence testing and as the baseline of
        ``benchmarks/bench_decision_cache.py``.  Decisions are
        bit-identical either way (property-tested).
    use_vector_batches:
        Enable the table-driven vectorized sweep
        (:mod:`repro.rbac.vector_engine`) on :meth:`decide_batch` and
        :meth:`decide_batch_many` (the default).  ``False`` forces the
        scalar per-request loop — kept as the differential baseline of
        ``tests/test_vector_engine.py`` and
        ``benchmarks/bench_vector_engine.py``.  Decisions and
        provenance are bit-identical either way (property-tested).
    use_session_store:
        Keep resident session state in the columnar
        :class:`~repro.rbac.session_store.SessionStore` (the default):
        sessions returned by :meth:`authenticate` are
        :class:`~repro.rbac.session_store.StoredSession` handles over
        numpy columns instead of :class:`Session` dataclasses —
        ~200 bytes of store overhead per resident session instead of
        kilobytes of object graph.  ``False`` keeps the object-backed
        sessions — the differential baseline of
        ``tests/test_session_store.py``.  Decisions, provenance, audit
        records and tracker timelines are bit-identical either way
        (property-tested).
    record_timelines:
        Store mode only: record the per-tracker ``valid``/``active``
        timeline events (the default).  ``False`` drops the event
        arenas — the million-session benchmark's configuration — and
        makes ``valid_timeline()`` raise.
    """

    def __init__(
        self,
        policy: Policy,
        scheme: Scheme = Scheme.WHOLE_EXECUTION,
        extension_alphabet: Iterable[AccessKey | tuple[str, str, str]] = (),
        classifier: PermissionClassifier | None = None,
        coordination_scope: str = "subject",
        use_srac_caches: bool = True,
        use_vector_batches: bool = True,
        use_session_store: bool = True,
        record_timelines: bool = True,
    ):
        if coordination_scope not in ("subject", "owner"):
            raise RbacError(
                f"unknown coordination scope {coordination_scope!r}"
            )
        self.policy = policy
        self.scheme = scheme
        self.extension_alphabet = tuple(
            AccessKey(*a) for a in extension_alphabet
        )
        self.classifier = classifier
        self.coordination_scope = coordination_scope
        self.use_srac_caches = use_srac_caches
        self.use_vector_batches = use_vector_batches
        self.audit = AuditLog()
        if use_session_store:
            self._store: SessionStore | None = SessionStore(
                scheme, record_timelines=record_timelines
            )
            # Handles are views — the columns are the state — so the
            # engine only weakly tracks them; dropping every reference
            # to a session does not lose it (materialize() by id).
            self._sessions: "dict[str, Session] | weakref.WeakValueDictionary" = (
                weakref.WeakValueDictionary()
            )
        else:
            self._store = None
            self._sessions = {}
        # Set by ShardedEngine so freshly minted handles/sessions carry
        # their routing stamp (attribute routing replaces the old
        # per-session-id route dict).
        self.shard_index: int | None = None
        self.router_token: object | None = None
        # Owner-scope state: combined histories (list-backed, O(1)
        # append) and monitor caches keyed by user name.
        self._owner_observed: dict[str, list[AccessKey]] = {}
        self._owner_monitors: dict[tuple[str, object], tuple] = {}
        # Decision-path caches.  Candidates: (policy version, active
        # role set, access) -> matching (role, permission) pairs; the
        # version in the key makes policy mutations invalidate lazily.
        # Extension entries: (constraint, access) -> (compiled
        # constraint, canonical request universe).
        self._candidates_cache: dict[
            tuple[int, frozenset[Role], AccessKey],
            tuple[tuple[Role, Permission], ...],
        ] = {}
        self._extension_cache: dict[
            tuple[Constraint, AccessKey],
            tuple[
                CompiledConstraint,
                tuple[AccessKey, ...],
                frozenset[tuple[int, ...]] | None,
            ],
        ] = {}
        # (constraint, access) -> TransitionTable | None, fronting the
        # process-level table cache: the vector sweep asks for the same
        # table on every batch, and the process cache's canonicalised
        # key is too expensive to rebuild per lookup on that path.
        self._extension_tables: dict[
            tuple[Constraint, AccessKey], "TransitionTable | None"
        ] = {}
        self._candidate_hits = 0
        self._candidate_misses = 0
        self._live_hits = 0
        self._live_fallbacks = 0
        self._vector_decisions = 0
        self._vector_fallbacks = 0
        # Coalition membership epoch source (bind_membership); when
        # set, every DecisionProvenance carries the epoch in force at
        # decision time.
        self._epoch_source = None
        # Observability counters (repro.obs).  Plain attributes, no
        # lock: engine internals are only ever touched single-threaded
        # or under the owning shard's lock, and the registry *pulls*
        # them through the collector below at snapshot time.  Outcome
        # totals come from the audit log's always-on counters (paid
        # identically with obs on or off), so the obs-enabled decide
        # path adds only the sampling tick below — no clock reads off
        # the 1-in-``DECIDE_SPAN_SAMPLE`` sample.
        self._obs_decisions = 0
        self._obs_decide_sampled = 0
        self._obs_decide_sampled_s = 0.0
        self._obs_decide_max_s = 0.0
        # reset_stats() baselines for the audit-derived outcome counts.
        self._obs_granted_base = 0
        self._obs_denied_base = 0
        REGISTRY.register_collector(self._collect_obs)

    def __del__(self):
        try:
            REGISTRY.absorb(self._collect_obs())
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def _collect_obs(self) -> dict[str, float]:
        """Pull-time metrics source (summed across engines by the
        registry — shards of one :class:`ShardedEngine` aggregate).
        Outcome counts are audit-derived and therefore cover *all*
        decisions since construction (or :meth:`reset_stats`),
        regardless of when observability was switched on;
        ``engine.decide.sampled*`` timing exists only for decisions
        taken while it was enabled."""
        granted = self.audit.granted_count - self._obs_granted_base
        denied = self.audit.denied_count - self._obs_denied_base
        store_bytes = (
            float(self._store.nbytes()) if self._store is not None else 0.0
        )
        return {
            "engine.sessions.resident": float(self.resident_sessions()),
            "engine.sessions.store_bytes": store_bytes,
            "engine.decisions": granted + denied,
            "engine.decisions.granted": granted,
            "engine.decisions.denied": denied,
            "engine.decide.sampled": self._obs_decide_sampled,
            "engine.decide.sampled_s": self._obs_decide_sampled_s,
            "engine.decide.max_s": self._obs_decide_max_s,
            "engine.candidate_cache.hits": self._candidate_hits,
            "engine.candidate_cache.misses": self._candidate_misses,
            "engine.live_set.hits": self._live_hits,
            "engine.live_set.fallbacks": self._live_fallbacks,
            "engine.vector.decisions": self._vector_decisions,
            "engine.vector.fallbacks": self._vector_fallbacks,
        }

    def _record_decide(self, start: float, decision: Decision) -> None:
        """Sampled decide timing + span (obs enabled only; called for
        the 1-in-``DECIDE_SPAN_SAMPLE`` decisions whose entry drew a
        ``start`` timestamp — outcome counters are updated inline in
        :meth:`decide` so the common enabled path stays a couple of
        integer increments)."""
        duration = time.perf_counter() - start
        self._obs_decide_sampled += 1
        self._obs_decide_sampled_s += duration
        if duration > self._obs_decide_max_s:
            self._obs_decide_max_s = duration
        provenance = decision.provenance
        RECORDER.record(
            "engine.decide",
            start,
            duration,
            {
                "access": str(decision.access),
                "granted": decision.granted,
                "kind": provenance.kind if provenance is not None else "",
                "sampled": DECIDE_SPAN_SAMPLE,
            },
        )

    # -- coalition membership ------------------------------------------------

    def bind_membership(self, coalition) -> None:
        """Stamp every decision's provenance with ``coalition``'s
        membership epoch (duck-typed: anything with a
        ``membership_epoch`` attribute works).  Unbound engines stamp
        ``None`` — the static-topology behaviour."""
        self._epoch_source = lambda: coalition.membership_epoch

    def _current_epoch(self) -> int | None:
        source = self._epoch_source
        return source() if source is not None else None

    def rescind_server(self, server: str) -> int:
        """Drop every observed access issued at ``server`` from all
        session and owner histories and invalidate the affected monitor
        caches — the incremental-mode consequence of a coalition
        eviction (explicit-history callers filter their own trace via
        :meth:`~repro.coalition.Coalition.admissible_trace`).  Returns
        the number of observations removed."""
        removed = 0
        if self._store is not None:
            removed += self._store.rescind_server(server)
        else:
            for session in self._sessions.values():
                kept = [a for a in session._observed if a.server != server]
                if len(kept) != len(session._observed):
                    removed += len(session._observed) - len(kept)
                    session.observed = kept  # setter clears monitor_cache
        for owner, observed in self._owner_observed.items():
            kept = [a for a in observed if a.server != server]
            if len(kept) != len(observed):
                removed += len(observed) - len(kept)
                self._owner_observed[owner] = kept
                for key in [k for k in self._owner_monitors if k[0] == owner]:
                    del self._owner_monitors[key]
        return removed

    # -- session management --------------------------------------------------

    def authenticate(
        self,
        user_name: str,
        t: float,
        principals: Iterable[str] = (),
    ) -> Session:
        """Authenticate ``user_name`` and establish a session (the
        paper's subject creation after certificate validation)."""
        user = self.policy.user(user_name)
        subject = Subject(user, frozenset(principals) | {f"user:{user_name}"})
        if self._store is not None:
            sid = subject.subject_id
            seq: int | None = None
            if sid.startswith("subject-"):
                try:
                    seq = int(sid[8:])
                except ValueError:  # pragma: no cover - exotic ids
                    seq = None
            row = self._store.open(
                subject, t, next(_session_counter), subj_seq=seq
            )
            return self._handle(row, subject=subject)
        session = Session(subject=subject, start_time=t)
        session._shard_index = self.shard_index
        session._router = self.router_token
        self._sessions[session.session_id] = session
        return session

    def _handle(self, row: int, subject: Subject | None = None) -> StoredSession:
        """The (cached) handle for a live store row."""
        store = self._store
        handle = store.handle_for(row)
        if handle is None:
            if not store._alive.data[row]:
                raise RbacError(f"no live session at store row {row}")
            handle = StoredSession(store, row, subject=subject)
            handle._shard_index = self.shard_index
            handle._router = self.router_token
            store.register_handle(row, handle)
            self._sessions[handle.session_id] = handle
        return handle

    def materialize(self, session_id: str) -> Session:
        """The live session with ``session_id`` — for columnar engines
        a (possibly fresh) :class:`StoredSession` view over the row;
        the store keeps no per-session Python object, so dropping every
        handle loses nothing.  Raises :class:`RbacError` for unknown or
        closed sessions."""
        session = self._sessions.get(session_id)
        if session is not None:
            return session
        if self._store is not None:
            row = self._store.row_of_session_id(session_id)
            if row is not None:
                return self._handle(row)
        raise RbacError(f"unknown session {session_id!r}")

    def session_at(self, row: int) -> StoredSession:
        """The handle for store row ``row`` (columnar engines only) —
        the bulk loader's O(1) alternative to :meth:`materialize`."""
        if self._store is None:
            raise RbacError("session_at requires the columnar session store")
        return self._handle(int(row))

    def resident_sessions(self) -> int:
        """How many sessions are currently resident."""
        if self._store is not None:
            return self._store.resident
        return len(self._sessions)

    def close_session(self, session: Session, t: float) -> None:
        """End a session: deactivate everything."""
        for role in list(session.active_roles):
            self.deactivate_role(session, role.name, t)
        self._sessions.pop(session.session_id, None)
        store = getattr(session, "_store", None)
        if store is not None and store is self._store:
            store.close(session._row, session._gen)

    def expire_sessions(
        self, now: float | None = None, idle_for: float = 0.0
    ) -> int:
        """Close every session idle for at least ``idle_for`` as of
        ``now`` (default: the engine's latest observed activity
        instant) — the long-run guard against unbounded session growth.
        Each expired session is closed at the latest instant any of its
        trackers has reached (never behind a tracker clock), exactly as
        an explicit :meth:`close_session` there.  Returns the number of
        sessions expired."""
        expired = 0
        if self._store is not None:
            eff_now, rows = self._store.idle_rows(now, idle_for)
            for row in rows.tolist():
                session = self._handle(row)
                t = eff_now
                for tracker in session.trackers.values():
                    t = max(t, tracker.now)
                self.close_session(session, t)
                expired += 1
            return expired
        sessions = list(self._sessions.values())
        if not sessions:
            return 0
        eff_now = (
            float(now)
            if now is not None
            else max(s.last_seen for s in sessions)
        )
        for session in sessions:
            if eff_now - session.last_seen >= idle_for:
                t = eff_now
                for tracker in session.trackers.values():
                    t = max(t, tracker.now)
                self.close_session(session, t)
                expired += 1
        return expired

    def open_sessions(
        self,
        user_names: Sequence[str],
        t: float,
        roles: Iterable[str] = (),
    ) -> np.ndarray:
        """Bulk-authenticate ``user_names`` at ``t`` and activate
        ``roles`` on every session — the columnar load path (vectorized
        column fills; entitlement and DSD are checked once per distinct
        user / role set).  Equivalent to :meth:`authenticate` +
        :meth:`activate_role` per session (property-tested), minus the
        per-session Python objects.  Returns the opened row indices
        (:meth:`session_at` materialises handles on demand)."""
        store = self._store
        if store is None:
            raise RbacError("open_sessions requires the columnar session store")
        names = list(user_names)
        role_objs = tuple(self.policy.role(name) for name in roles)
        role_fs = frozenset(role_objs)
        for constraint in self.policy.dsd_constraints:
            if constraint.violated_by(role_fs):
                raise RbacError(
                    f"activating {sorted(r.name for r in role_objs)!r} "
                    f"violates DSD constraint {constraint.name!r}"
                )
        # One tracker plan for the whole block: key -> duration, in the
        # same first-creation order the scalar activation loop uses.
        tracker_plan: dict[str, float] = {}
        for role in role_objs:
            for permission in self.policy.permissions_of_role(role):
                key = self._tracker_key(permission)
                if key not in tracker_plan:
                    tracker_plan[key] = self._duration_for(permission)
        checked: dict[str, tuple[int, int]] = {}
        user_codes: list[int] = []
        principal_codes: list[int] = []
        sid_seqs: list[int] = []
        subj_seqs: list[int] = []
        for name in names:
            entry = checked.get(name)
            if entry is None:
                user = self.policy.user(name)
                if role_objs:
                    entitled = self.policy.hierarchy.closure(
                        self.policy.roles_of_user(user)
                    )
                    for role in role_objs:
                        if role not in entitled:
                            raise RbacError(
                                f"user {name!r} is not authorized "
                                f"for role {role.name!r}"
                            )
                entry = checked[name] = (
                    store._intern_user(user),
                    store._intern_principals(frozenset({f"user:{name}"})),
                )
            user_codes.append(entry[0])
            principal_codes.append(entry[1])
            sid_seqs.append(next(_session_counter))
            subj_seqs.append(next(rbac_model._subject_counter))
        rows = store.open_block(
            t,
            sid_seqs,
            subj_seqs,
            user_codes,
            principal_codes,
            store._intern_role_set(role_fs),
        )
        for key, duration in tracker_plan.items():
            store.tracker_activate_block(key, rows, t, duration)
        return rows

    def activate_role(self, session: Session, role_name: str, t: float) -> None:
        """Activate a role the user is entitled to (checks UA membership
        and DSD), and activate the validity trackers of its permissions."""
        role = self.policy.role(role_name)
        entitled = self.policy.roles_of_user(session.subject.user)
        # A user may activate any assigned role or one it dominates.
        if role not in self.policy.hierarchy.closure(entitled):
            raise RbacError(
                f"user {session.subject.user.name!r} is not authorized "
                f"for role {role_name!r}"
            )
        # DSD is checked against the *directly activated* role set (the
        # ANSI-RBAC reading); SSD, in the policy, uses the inheritance
        # closure.  Using the closure here would make any DSD pair with
        # an inheritance edge between its members unsatisfiable.
        proposed = session.active_roles | {role}
        for constraint in self.policy.dsd_constraints:
            if constraint.violated_by(proposed):
                raise RbacError(
                    f"activating {role_name!r} violates DSD constraint "
                    f"{constraint.name!r}"
                )
        session.active_roles.add(role)
        for permission in self.policy.permissions_of_role(role):
            self._tracker(session, permission).activate(t)

    def deactivate_role(self, session: Session, role_name: str, t: float) -> None:
        """Deactivate a role; permissions no longer reachable through a
        remaining active role lose their active state."""
        role = self.policy.role(role_name)
        session.active_roles.discard(role)
        remaining = self.policy.permissions_of_roles(
            self.policy.hierarchy.closure(set(session.active_roles))
        )
        remaining_keys = {self._tracker_key(p) for p in remaining}
        for key, tracker in session.trackers.items():
            if key not in remaining_keys:
                tracker.deactivate(t)

    def notify_migration(self, session: Session, t: float) -> None:
        """The mobile object arrived at a new server: under the
        per-server scheme this resets validity budgets (Section 4)."""
        for tracker in session.trackers.values():
            tracker.migrate(t)

    def _tracker_key(self, permission: Permission) -> str:
        """Permissions classified together share one tracker (and thus
        one budget); unclassified permissions track individually."""
        if self.classifier is not None:
            cls = self.classifier.class_of(permission.name)
            if cls is not None:
                return f"class:{cls.name}"
        return permission.name

    def _duration_for(self, permission: Permission) -> float:
        if self.classifier is not None:
            cls = self.classifier.class_of(permission.name)
            if cls is not None:
                durations = {
                    name: perm.validity_duration
                    for name, perm in self.policy.permissions.items()
                }
                return cls.aggregate(durations)
        return permission.validity_duration

    def _tracker(self, session: Session, permission: Permission):
        key = self._tracker_key(permission)
        tracker = session.trackers.get(key)
        if tracker is None:
            tracker = session.create_tracker(
                key, self._duration_for(permission), self.scheme
            )
        return tracker

    # -- decisions ---------------------------------------------------------------

    def observe(self, session: Session, access: AccessKey | tuple[str, str, str]) -> None:
        """Record that ``access`` was *actually executed* for this
        session (a proof was issued).  Advances the cached constraint
        monitors so that incremental decisions (``history=None``) stay
        O(1) in history length.  Under owner scope the observation also
        counts against every companion session of the same user."""
        access = AccessKey.of(access)
        session.record_observation(access)
        session.advance_monitors(access)
        if self.coordination_scope == "owner":
            owner = session.subject.user.name
            self._owner_observed.setdefault(owner, []).append(access)
            for key, (compiled, states) in list(self._owner_monitors.items()):
                if key[0] == owner:
                    self._owner_monitors[key] = (
                        compiled,
                        compiled.step(states, access),
                    )

    def _cached_monitors(
        self, session: Session, constraint
    ) -> tuple[CompiledConstraint, tuple[int, ...]]:
        if self.coordination_scope == "owner":
            owner = session.subject.user.name
            key = (owner, constraint)
            entry = self._owner_monitors.get(key)
            if entry is None:
                compiled = compile_constraint(
                    constraint, cache=self.use_srac_caches
                )
                entry = (compiled, compiled.run(self._owner_observed.get(owner, ())))
                self._owner_monitors[key] = entry
            return entry
        entry = session.monitor_entry(constraint)
        if entry is None:
            compiled = compile_constraint(constraint, cache=self.use_srac_caches)
            entry = session.init_monitor(constraint, compiled)
        return entry

    def decide(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = (),
        program: Program | None = None,
    ) -> Decision:
        """Decide one access request.

        ``history`` is the object's *proved* access trace (from its
        :class:`~repro.coalition.proofs.ProofRegistry`); ``program`` is
        the remaining SRAL program when the requester discloses it.
        The spatial check asks whether the history *including this
        access* can still satisfy each candidate permission's
        constraint — through the disclosed program if given, otherwise
        through any future over the constraint-relevant alphabet.

        ``history=None`` selects **incremental mode**: the engine uses
        the session's own observed history (fed by :meth:`observe`) via
        cached monitor states, making the spatial check independent of
        history length.  Decisions are identical to passing
        ``session.observed`` explicitly (property-tested).

        Every decision carries a
        :class:`~repro.obs.provenance.DecisionProvenance` explain
        record; denials always name the failing SRAC clause or the
        Eq. 4.1 temporal state.
        """
        obs_on = OBS.enabled
        start = 0.0
        if obs_on:
            self._obs_decisions += 1
            # Wall-clock timing (and the span) is itself sampled: two
            # ``perf_counter`` calls per decision would alone eat most
            # of the ≤5 % instrumentation budget.
            if self._obs_decisions % DECIDE_SPAN_SAMPLE == 0:
                start = time.perf_counter()
        access = AccessKey(*access)
        if program is not None:
            history_mode = "program"
        elif history is None:
            history_mode = "incremental"
        else:
            history_mode = "explicit"
        candidates = self._candidates(session, access)
        return self._decide_core(
            session, access, t, history, program, history_mode, candidates, start
        )

    def _decide_core(
        self,
        session: Session,
        access: AccessKey,
        t: float,
        history: Trace | None,
        program: Program | None,
        history_mode: str,
        candidates: tuple[tuple[Role, Permission], ...],
        start: float,
    ) -> Decision:
        """:meth:`decide` after candidate resolution — split out so the
        batch paths can hoist the candidate lookup per distinct access
        instead of re-resolving it per element."""
        session.touch(t)
        epoch = self._current_epoch()
        if not candidates:
            decision = Decision(
                subject_id=session.subject.subject_id,
                access=access,
                granted=False,
                time=t,
                reason="no active role provides a matching permission",
                provenance=DecisionProvenance(
                    kind="no-candidate",
                    history_mode=history_mode,
                    history_len=self._history_len(session, history),
                    epoch=epoch,
                ),
            )
            self.audit.record(decision)
            if start:
                self._record_decide(start, decision)
            return decision

        last_reason = ""
        records: list[CandidateProvenance] = []
        for role, permission in candidates:
            spatial_ok = self._spatial_ok(
                session, permission, access, history, program
            )
            tracker = self._tracker(session, permission)
            state = tracker.state(t)
            temporal_ok = state is PermissionState.VALID
            constraint = permission.spatial_constraint
            records.append(
                CandidateProvenance(
                    role=role.name,
                    permission=permission.name,
                    constraint=(
                        _constraint_source(constraint)
                        if constraint is not None
                        else None
                    ),
                    spatial_ok=spatial_ok,
                    temporal_ok=temporal_ok,
                    temporal_state=state.value,
                )
            )
            if spatial_ok and temporal_ok:
                decision = Decision(
                    subject_id=session.subject.subject_id,
                    access=access,
                    granted=True,
                    time=t,
                    role=role.name,
                    permission=permission.name,
                    spatial_ok=True,
                    temporal_ok=True,
                    provenance=DecisionProvenance(
                        kind="granted",
                        candidates=(records[-1],),
                        history_mode=history_mode,
                        history_len=self._history_len(session, history),
                        epoch=epoch,
                    ),
                )
                self.audit.record(decision)
                if start:
                    self._record_decide(start, decision)
                return decision
            if not spatial_ok:
                last_reason = (
                    f"spatial constraint of {permission.name!r} cannot be satisfied"
                )
            else:
                last_reason = (
                    f"permission {permission.name!r} is {state.value}"
                )
        failing = records[-1]
        decision = Decision(
            subject_id=session.subject.subject_id,
            access=access,
            granted=False,
            time=t,
            role=failing.role,
            permission=failing.permission,
            spatial_ok=failing.spatial_ok,
            temporal_ok=failing.temporal_ok,
            reason=last_reason,
            provenance=DecisionProvenance(
                kind="spatial" if not failing.spatial_ok else "temporal",
                candidates=tuple(records),
                history_mode=history_mode,
                history_len=self._history_len(session, history),
                foreign_servers=self._foreign_servers(session, access, history),
                epoch=epoch,
            ),
        )
        self.audit.record(decision)
        if start:
            self._record_decide(start, decision)
        return decision

    def _effective_history(
        self, session: Session, history: Trace | None
    ) -> tuple[AccessKey, ...] | Trace:
        """The trace the spatial check effectively ran against (the
        session's observed history in incremental mode, widened to the
        owner's combined history under owner scope)."""
        if history is not None:
            return history
        if self.coordination_scope == "owner":
            return tuple(
                self._owner_observed.get(session.subject.user.name, ())
            )
        return session.observed

    def _history_len(self, session: Session, history: Trace | None) -> int:
        if history is None and self.coordination_scope != "owner":
            # Column/list length read — no tuple-view materialisation
            # (the memo-churn fix: a batch that records observations no
            # longer rebuilds the O(n) view once per decision).
            return session.observed_len()
        effective = self._effective_history(session, history)
        try:
            return len(effective)
        except TypeError:  # pragma: no cover - exotic iterables
            return -1

    def _foreign_servers(
        self, session: Session, access: AccessKey, history: Trace | None
    ) -> tuple[str, ...]:
        """Distinct *other* servers contributing history entries — the
        decision's coordination footprint.  O(history); called on the
        denial path only."""
        servers = {
            AccessKey(*a).server
            for a in self._effective_history(session, history)
        }
        servers.discard(access.server)
        return tuple(sorted(servers))

    def enforce(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = (),
        program: Program | None = None,
    ) -> Decision:
        """Like :meth:`decide` but raises
        :class:`~repro.errors.AccessDenied` on denial."""
        decision = self.decide(session, access, t, history, program)
        if not decision.granted:
            raise AccessDenied(
                f"access {AccessKey(*access)} denied: {decision.reason}",
                decision=decision,
            )
        return decision

    def decide_batch(
        self,
        session: Session,
        accesses: Iterable[AccessKey | tuple[str, str, str]],
        t: float,
        dt: float = 0.0,
        history: Trace | None = None,
        program: Program | None = None,
        observe_granted: bool = False,
    ) -> list[Decision]:
        """Replay a request stream through :meth:`decide`.

        Each access is decided at ``t``, ``t + dt``, ``t + 2·dt``, …
        (validity trackers require monotone time).  The default
        ``history=None`` uses incremental mode — the intended use for
        server-side stream replay, where each decision is a cached
        monitor step plus a live-set lookup.  With ``observe_granted``
        every granted access is fed back via :meth:`observe` before the
        next request is decided, modelling a client that performs each
        access it is granted.

        Incremental batches take the **vectorized sweep**
        (:mod:`repro.rbac.vector_engine`) when ``use_vector_batches``
        is on: decisions and provenance are bit-identical to the
        scalar loop (property-tested), only faster.  Batches the sweep
        cannot handle — explicit history, disclosed program,
        ``observe_granted``, owner scope, products over the table
        budget, non-monotone time — fall back to the scalar loop,
        which itself hoists the candidate lookup per distinct access.
        """
        keys = [
            a if type(a) is AccessKey else AccessKey(*a) for a in accesses
        ]
        # Same float sequence as `clock += dt` accumulation, at C speed.
        times: list[float] = list(
            itertools.accumulate(
                itertools.repeat(dt, len(keys) - 1), initial=t
            )
        ) if keys else []
        if keys and self.use_vector_batches:
            prepared = None
            if (
                history is None
                and program is None
                and not observe_granted
                and dt >= 0
            ):
                from repro.rbac.vector_engine import (
                    commit_sweep,
                    prepare_sweep,
                )

                prepared = prepare_sweep(self, session, keys, times)
            if prepared is not None:
                self._vector_decisions += len(keys)
                return commit_sweep(prepared)
            self._vector_fallbacks += len(keys)
        decisions: list[Decision] = []
        obs_on = OBS.enabled
        if program is not None:
            history_mode = "program"
        elif history is None:
            history_mode = "incremental"
        else:
            history_mode = "explicit"
        candidate_memo: dict[
            AccessKey, tuple[tuple[Role, Permission], ...]
        ] = {}
        for access, when in zip(keys, times):
            start = 0.0
            if obs_on:
                self._obs_decisions += 1
                if self._obs_decisions % DECIDE_SPAN_SAMPLE == 0:
                    start = time.perf_counter()
            candidates = candidate_memo.get(access)
            if candidates is None:
                candidates = self._candidates(session, access)
                candidate_memo[access] = candidates
            decision = self._decide_core(
                session, access, when, history, program, history_mode,
                candidates, start,
            )
            if observe_granted and decision.granted:
                self.observe(session, access)
            decisions.append(decision)
        return decisions

    def decide_batch_many(
        self,
        requests: Iterable[tuple[Session, AccessKey | tuple[str, str, str]]],
        t: float,
        dt: float = 0.0,
        times: Sequence[float] | None = None,
    ) -> list[Decision]:
        """Decide an interleaved request stream across many sessions.

        ``requests`` is a sequence of ``(session, access)`` pairs; the
        i-th request is decided at ``t + i·dt`` on the same global
        clock accumulation as :meth:`decide_batch` (or at ``times[i]``
        when an explicit nondecreasing instant vector is given — the
        sharded engine passes each shard its exact slice of the global
        clock).  Incremental mode only (each session's own observed
        history, no program).

        The stream is regrouped per session and swept with the
        vectorized path; validity-tracker effects are per-session, so
        regrouping cannot change any verdict, and the audit log still
        receives the decisions in global stream order.  If any
        session's subsequence is ineligible the *whole* stream falls
        back to the scalar loop, so decisions are identical either
        way.
        """
        pairs = [
            (session, a if type(a) is AccessKey else AccessKey(*a))
            for session, a in requests
        ]
        if times is None:
            times = list(
                itertools.accumulate(
                    itertools.repeat(dt, len(pairs) - 1), initial=t
                )
            ) if pairs else []
        else:
            times = list(times)
            if len(times) != len(pairs):
                raise RbacError(
                    f"times has {len(times)} entries for {len(pairs)} requests"
                )
        monotone = all(b >= a for a, b in zip(times, times[1:]))
        if pairs and self.use_vector_batches:
            prepared = None
            if monotone:
                from repro.rbac.vector_engine import (
                    commit_sweep,
                    prepare_sweep,
                )

                by_session: dict[int, tuple[Session, list[int]]] = {}
                for i, (session, _access) in enumerate(pairs):
                    entry = by_session.get(id(session))
                    if entry is None:
                        by_session[id(session)] = (session, [i])
                    else:
                        entry[1].append(i)
                prepared = []
                for session, indices in by_session.values():
                    prep = prepare_sweep(
                        self,
                        session,
                        [pairs[i][1] for i in indices],
                        [times[i] for i in indices],
                    )
                    if prep is None:
                        prepared = None
                        break
                    prepared.append((prep, indices))
            if prepared is not None:
                decisions: list[Decision] = [None] * len(pairs)  # type: ignore[list-item]
                granted = 0
                for prep, indices in prepared:
                    swept = commit_sweep(prep, record_audit=False)
                    granted += prep.granted
                    for local, i in enumerate(indices):
                        decisions[i] = swept[local]
                self.audit.record_many(decisions, granted=granted)
                self._vector_decisions += len(pairs)
                return decisions
            self._vector_fallbacks += len(pairs)
        out: list[Decision] = []
        obs_on = OBS.enabled
        memo: dict[
            tuple[int, AccessKey], tuple[tuple[Role, Permission], ...]
        ] = {}
        for (session, access), when in zip(pairs, times):
            start = 0.0
            if obs_on:
                self._obs_decisions += 1
                if self._obs_decisions % DECIDE_SPAN_SAMPLE == 0:
                    start = time.perf_counter()
            memo_key = (id(session), access)
            candidates = memo.get(memo_key)
            if candidates is None:
                candidates = self._candidates(session, access)
                memo[memo_key] = candidates
            out.append(
                self._decide_core(
                    session, access, when, None, None, "incremental",
                    candidates, start,
                )
            )
        return out

    def explain(
        self,
        session: Session,
        access: AccessKey | tuple[str, str, str],
        t: float,
        history: Trace | None = (),
        program: Program | None = None,
    ) -> list[dict]:
        """Dry-run every candidate ``(role, permission)`` pair for an
        access and report both verdicts for each — the security
        officer's "why was this denied?" tool.

        Unlike :meth:`decide`, this does not stop at the first passing
        candidate, does not advance validity trackers' clocks beyond
        the query, and records nothing in the audit log.  Returns a
        list of dicts with keys ``role``, ``permission``,
        ``constraint`` (SRAC source text, or None), ``spatial_ok``,
        ``temporal_ok``, ``state``.
        """
        access = AccessKey(*access)
        rows: list[dict] = []
        for role, permission in self._candidates(session, access):
            tracker = self._tracker(session, permission)
            state = tracker.state(t)
            constraint = permission.spatial_constraint
            rows.append(
                {
                    "role": role.name,
                    "permission": permission.name,
                    "constraint": (
                        _constraint_source(constraint)
                        if constraint is not None
                        else None
                    ),
                    "spatial_ok": self._spatial_ok(
                        session, permission, access, history, program
                    ),
                    "temporal_ok": state is PermissionState.VALID,
                    "state": state.value,
                }
            )
        return rows

    # -- cache management --------------------------------------------------------

    def prewarm(
        self,
        alphabet: Iterable[AccessKey | tuple[str, str, str]] = (),
    ) -> int:
        """Compile every policy constraint, precompute the live sets
        for the given request alphabet (e.g. a
        :meth:`~repro.coalition.server.CoalitionServer.access_alphabet`),
        and lower each (constraint, request-universe) pair to its SRAC
        transition table, so the first real decision — scalar *or*
        vectorized batch — already takes the warm path.
        Returns the number of (constraint, access) entries warmed.
        """
        accesses = tuple(dict.fromkeys(AccessKey(*a) for a in alphabet))
        warmed = 0
        for permission in self.policy.permissions.values():
            constraint = permission.spatial_constraint
            if constraint is None:
                continue
            targets = [a for a in accesses if permission.matches(a)]
            if not targets:
                # No request alphabet: still intern the compilation and
                # the constraint's own-universe live set and table.
                compiled = compile_constraint(
                    constraint, cache=self.use_srac_caches
                )
                if self.use_srac_caches:
                    universe = tuple(
                        dict.fromkeys(
                            (
                                *constraint_alphabet(constraint),
                                *self.extension_alphabet,
                            )
                        )
                    )
                    live_set(compiled, universe)
                    if self.use_vector_batches:
                        compile_table(constraint, universe)
                warmed += 1
                continue
            for access in targets:
                _compiled, universe, _live = self._extension_entry(
                    constraint, access
                )
                if self.use_srac_caches and self.use_vector_batches:
                    # The vector sweep keys its table on exactly this
                    # entry's universe — warming it here is what makes
                    # the first batch table-cache-miss-free.
                    self._extension_table(constraint, access, universe)
                warmed += 1
        return warmed

    def cache_stats(self) -> EngineCacheStats:
        """Counters of the decision-path caches — the engine-level
        analogue of :func:`repro.srac.checker.check_program_stats`'s
        configuration report."""
        return EngineCacheStats(
            candidate_hits=self._candidate_hits,
            candidate_misses=self._candidate_misses,
            extension_entries=len(self._extension_cache),
            live_hits=self._live_hits,
            live_fallbacks=self._live_fallbacks,
            srac=cache_stats(),
            vector_decisions=self._vector_decisions,
            vector_fallbacks=self._vector_fallbacks,
        )

    def reset_stats(self) -> None:
        """Zero the engine's hit/miss counters without touching cache
        *contents* — so benchmarks can measure warm steady-state
        hit-rates without a process restart.  Process-level SRAC
        counters are shared and reset separately
        (:func:`repro.srac.reachability.reset_cache_stats`)."""
        self._candidate_hits = 0
        self._candidate_misses = 0
        self._live_hits = 0
        self._live_fallbacks = 0
        self._vector_decisions = 0
        self._vector_fallbacks = 0
        self._obs_decisions = 0
        self._obs_decide_sampled = 0
        self._obs_decide_sampled_s = 0.0
        self._obs_decide_max_s = 0.0
        self._obs_granted_base = self.audit.granted_count
        self._obs_denied_base = self.audit.denied_count

    def invalidate_caches(self) -> None:
        """Drop the engine's derived caches (candidates, compiled
        universes, owner monitors, per-session monitor states).  Policy
        mutations through :class:`~repro.rbac.policy.Policy` methods
        invalidate the candidate cache automatically via the version
        counter; this is the explicit hammer for out-of-band changes."""
        self._candidates_cache.clear()
        self._extension_cache.clear()
        self._extension_tables.clear()
        self._owner_monitors.clear()
        if self._store is not None:
            self._store.clear_all_monitor_states()
        else:
            for session in self._sessions.values():
                session.monitor_cache.clear()

    # -- internals -------------------------------------------------------------

    def _candidates(
        self, session: Session, access: AccessKey
    ) -> tuple[tuple[Role, Permission], ...]:
        """(role, permission) pairs from active roles matching the
        access, deterministic order.  Cached per (policy version,
        active-role set, access): role activation changes the key, and
        policy mutations bump the version, so stale entries are never
        served."""
        key = (self.policy.version, session.role_set(), access)
        cached = self._candidates_cache.get(key)
        if cached is not None:
            self._candidate_hits += 1
            return cached
        self._candidate_misses += 1
        out: list[tuple[Role, Permission]] = []
        seen: set[str] = set()
        for role in sorted(session.active_roles, key=lambda r: r.name):
            for permission in sorted(
                self.policy.permissions_of_role(role), key=lambda p: p.name
            ):
                if permission.name in seen:
                    continue
                if permission.matches(access):
                    seen.add(permission.name)
                    out.append((role, permission))
        result = tuple(out)
        self._candidates_cache[key] = result
        return result

    def _extension_entry(
        self, constraint: Constraint, access: AccessKey
    ) -> tuple[
        CompiledConstraint,
        tuple[AccessKey, ...],
        frozenset[tuple[int, ...]] | None,
    ]:
        """Compiled constraint, canonical request universe and
        precomputed live set for one (constraint, access) pair —
        computed once per engine, so a warm decision reduces the
        spatial check to a set-membership lookup.  With
        ``use_srac_caches=False`` the entry is rebuilt on every call —
        the pre-cache behaviour the benchmarks use as their baseline."""
        key = (constraint, access)
        entry = self._extension_cache.get(key)
        if entry is None:
            compiled = compile_constraint(constraint, cache=self.use_srac_caches)
            universe = tuple(
                dict.fromkeys(
                    (
                        *constraint_alphabet(constraint),
                        *self.extension_alphabet,
                        access,
                    )
                )
            )
            live = (
                live_set(compiled, universe) if self.use_srac_caches else None
            )
            entry = (compiled, universe, live)
            if self.use_srac_caches:
                self._extension_cache[key] = entry
        return entry

    def _extension_table(
        self,
        constraint: Constraint,
        access: AccessKey,
        universe: tuple[AccessKey, ...],
    ) -> "TransitionTable | None":
        """The compiled transition table for one (constraint, access)
        pair, memoised per engine in front of the process-level cache
        (``None`` is memoised too — "over budget" is as stable as the
        table itself).  ``universe`` must be the canonical request
        universe from :meth:`_extension_entry` for the same pair."""
        key = (constraint, access)
        try:
            return self._extension_tables[key]
        except KeyError:
            table = compile_table(constraint, universe)
            if self.use_srac_caches:
                self._extension_tables[key] = table
            return table

    def _extendable(
        self,
        compiled: CompiledConstraint,
        states: tuple[int, ...],
        universe: Sequence[AccessKey],
        live: frozenset[tuple[int, ...]] | None,
    ) -> bool:
        """Can any word over ``universe`` drive ``states`` to
        acceptance?  Fast path: membership in the precomputed live set
        (O(1)); falls back to the bounded BFS when the monitor product
        exceeds the reachability state budget or caching is disabled."""
        if live is not None:
            self._live_hits += 1
            return states in live
        if self.use_srac_caches:
            self._live_fallbacks += 1
        return satisfiable_extension_states(
            compiled, states, universe, use_cache=False
        )

    def _spatial_ok(
        self,
        session: Session,
        permission: Permission,
        access: AccessKey,
        history: Trace | None,
        program: Program | None,
    ) -> bool:
        constraint = permission.spatial_constraint
        if constraint is None:
            return True
        compiled, universe, live = self._extension_entry(constraint, access)
        if history is None and program is None:
            # Incremental mode: one monitor step instead of replaying
            # the whole history, then a live-set membership test.
            _, states = self._cached_monitors(session, constraint)
            return self._extendable(
                compiled, compiled.step(states, access), universe, live
            )
        if history is None:
            if self.coordination_scope == "owner":
                effective: Trace = tuple(
                    self._owner_observed.get(session.subject.user.name, ())
                )
            else:
                effective = session.observed
        else:
            effective = history
        hypothetical = tuple(AccessKey(*a) for a in effective) + (access,)
        if program is not None:
            return check_program(
                program, constraint, history=hypothetical, mode="exists"
            )
        return self._extendable(
            compiled, compiled.run(hypothetical), universe, live
        )
