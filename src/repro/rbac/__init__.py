"""Extended RBAC with coordinated spatio-temporal constraints
(paper Sections 3.4 and 4).

* :mod:`repro.rbac.model` — users, roles, permissions (with spatial
  constraints and validity durations), subjects;
* :mod:`repro.rbac.hierarchy` — role inheritance;
* :mod:`repro.rbac.policy` — the policy store (UA, PA, hierarchy, SSD/DSD);
* :mod:`repro.rbac.engine` — the decision engine (Eq. 3.1 + Eq. 4.1);
* :mod:`repro.rbac.audit` — the decision log.
"""

from repro.rbac.audit import AuditLog, Decision
from repro.rbac.engine import AccessControlEngine, Session
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import WILDCARD, Permission, Role, Subject, User
from repro.rbac.policy import Policy
from repro.rbac.gtrbac import Activation, GTRBACEngine, GTRBACPolicy
from repro.rbac.history_baseline import CoordinatedReference, LocalHistoryEngine
from repro.rbac.separation import DSDConstraint, SSDConstraint
from repro.rbac.trbac import PeriodicInterval, TRBACEngine, TRBACPolicy

__all__ = [
    "AuditLog",
    "Decision",
    "AccessControlEngine",
    "Session",
    "RoleHierarchy",
    "WILDCARD",
    "Permission",
    "Role",
    "Subject",
    "User",
    "Policy",
    "DSDConstraint",
    "SSDConstraint",
    "Activation",
    "GTRBACEngine",
    "GTRBACPolicy",
    "CoordinatedReference",
    "LocalHistoryEngine",
    "PeriodicInterval",
    "TRBACEngine",
    "TRBACPolicy",
]
