"""Policy store: the security officer's declarations.

A :class:`Policy` aggregates users, roles, permissions, the user-role
assignment ``UA``, the role-permission assignment ``PA`` (the paper's
``RP(·)``), the role hierarchy and the separation-of-duty constraint
sets.  It corresponds to the Java policy files of Section 5.1 ("the
grant statements associate the permissions to principals");
:meth:`Policy.from_dict` loads the same information from a declarative
mapping so policies can live in configuration.
"""

from __future__ import annotations

import math
import shlex
from typing import Iterable, Mapping

from repro.errors import PolicyError, RbacError
from repro.rbac.hierarchy import RoleHierarchy
from repro.rbac.model import Permission, Role, User
from repro.rbac.separation import DSDConstraint, SSDConstraint
from repro.srac.parser import parse_constraint

__all__ = ["Policy"]


class Policy:
    """Mutable policy under construction; the engine reads it."""

    def __init__(self) -> None:
        self.users: dict[str, User] = {}
        self.roles: dict[str, Role] = {}
        self.permissions: dict[str, Permission] = {}
        self._user_roles: dict[User, set[Role]] = {}
        self._role_permissions: dict[Role, set[Permission]] = {}
        self.hierarchy = RoleHierarchy()
        self.ssd_constraints: list[SSDConstraint] = []
        self.dsd_constraints: list[DSDConstraint] = []
        #: Monotone mutation counter.  Every declaration bumps it; the
        #: engine keys its derived caches (candidate permissions per
        #: role set, compiled-constraint universes) on this version so
        #: they invalidate automatically when the policy changes.
        self.version = 0

    def _bump(self) -> None:
        self.version += 1

    # -- declarations ------------------------------------------------------

    def add_user(self, name: str) -> User:
        if name in self.users:
            raise PolicyError(f"duplicate user {name!r}")
        user = User(name)
        self.users[name] = user
        self._bump()
        return user

    def add_role(self, name: str) -> Role:
        if name in self.roles:
            raise PolicyError(f"duplicate role {name!r}")
        role = Role(name)
        self.roles[name] = role
        self._bump()
        return role

    def add_permission(self, permission: Permission) -> Permission:
        if permission.name in self.permissions:
            raise PolicyError(f"duplicate permission {permission.name!r}")
        self.permissions[permission.name] = permission
        self._bump()
        return permission

    def add_inheritance(self, senior: str, junior: str) -> None:
        """``senior`` inherits ``junior``'s permissions."""
        self.hierarchy.add_inheritance(self.role(senior), self.role(junior))
        self._bump()

    def assign_user(self, user_name: str, role_name: str) -> None:
        """Add ``(user, role)`` to UA, enforcing SSD against the
        inheritance closure of the user's assigned roles."""
        user = self.user(user_name)
        role = self.role(role_name)
        proposed = self._user_roles.get(user, set()) | {role}
        closure = self.hierarchy.closure(proposed)
        for constraint in self.ssd_constraints:
            if constraint.violated_by(closure):
                raise PolicyError(
                    f"assigning {role_name!r} to {user_name!r} violates "
                    f"SSD constraint {constraint.name!r}"
                )
        self._user_roles.setdefault(user, set()).add(role)
        self._bump()

    def assign_permission(self, role_name: str, permission_name: str) -> None:
        """Add ``(role, permission)`` to PA."""
        role = self.role(role_name)
        permission = self.permission(permission_name)
        self._role_permissions.setdefault(role, set()).add(permission)
        self._bump()

    def replace_permission(self, permission: Permission) -> Permission:
        """Swap an existing permission for a new declaration with the
        same name (typically a revised spatial constraint or duration).
        Role grants follow the name: every role granted the old
        permission is granted the replacement instead.  Bumps
        :attr:`version`, invalidating engine-derived caches."""
        old = self.permission(permission.name)
        self.permissions[permission.name] = permission
        for granted in self._role_permissions.values():
            if old in granted:
                granted.discard(old)
                granted.add(permission)
        self._bump()
        return permission

    def add_ssd(self, constraint: SSDConstraint) -> None:
        # Retroactive check: existing assignments must already comply.
        for user, roles in self._user_roles.items():
            if constraint.violated_by(self.hierarchy.closure(roles)):
                raise PolicyError(
                    f"SSD constraint {constraint.name!r} is violated by "
                    f"existing assignments of user {user.name!r}"
                )
        self.ssd_constraints.append(constraint)
        self._bump()

    def add_dsd(self, constraint: DSDConstraint) -> None:
        self.dsd_constraints.append(constraint)
        self._bump()

    # -- lookups -----------------------------------------------------------

    def user(self, name: str) -> User:
        try:
            return self.users[name]
        except KeyError:
            raise PolicyError(f"unknown user {name!r}") from None

    def role(self, name: str) -> Role:
        try:
            return self.roles[name]
        except KeyError:
            raise PolicyError(f"unknown role {name!r}") from None

    def permission(self, name: str) -> Permission:
        try:
            return self.permissions[name]
        except KeyError:
            raise PolicyError(f"unknown permission {name!r}") from None

    def roles_of_user(self, user: User) -> frozenset[Role]:
        """UA(user): the directly assigned roles."""
        return frozenset(self._user_roles.get(user, ()))

    def direct_permissions(self, role: Role) -> frozenset[Permission]:
        """PA(role) without inheritance."""
        return frozenset(self._role_permissions.get(role, ()))

    def permissions_of_role(self, role: Role) -> frozenset[Permission]:
        """``RP(role)`` including inherited permissions."""
        out: set[Permission] = set()
        for member in self.hierarchy.closure([role]):
            out |= self._role_permissions.get(member, set())
        return frozenset(out)

    def permissions_of_roles(self, roles: Iterable[Role]) -> frozenset[Permission]:
        out: set[Permission] = set()
        for role in roles:
            out |= self.permissions_of_role(role)
        return frozenset(out)

    # -- declarative loading ---------------------------------------------------

    @staticmethod
    def from_dict(data: Mapping) -> "Policy":
        """Build a policy from a declarative mapping::

            {
              "users": ["alice"],
              "roles": ["auditor", "clerk"],
              "permissions": [
                 {"name": "p1", "op": "exec", "resource": "rsw",
                  "server": "*",
                  "constraint": "count(0, 5, [res = rsw])",
                  "duration": 30.0},
              ],
              "hierarchy": [["auditor", "clerk"]],          # senior, junior
              "user_roles": [["alice", "auditor"]],
              "role_permissions": [["clerk", "p1"]],
              "ssd": [{"name": "x", "roles": ["a", "b"], "cardinality": 2}],
              "dsd": [...],
            }
        """
        policy = Policy()
        try:
            for name in data.get("users", ()):
                policy.add_user(name)
            for name in data.get("roles", ()):
                policy.add_role(name)
            for spec in data.get("permissions", ()):
                constraint_src = spec.get("constraint")
                permission = Permission(
                    name=spec["name"],
                    op=spec.get("op", "*"),
                    resource=spec.get("resource", "*"),
                    server=spec.get("server", "*"),
                    spatial_constraint=(
                        parse_constraint(constraint_src) if constraint_src else None
                    ),
                    validity_duration=float(spec.get("duration", math.inf)),
                )
                policy.add_permission(permission)
            for senior, junior in data.get("hierarchy", ()):
                policy.add_inheritance(senior, junior)
            for spec in data.get("ssd", ()):
                policy.add_ssd(
                    SSDConstraint(
                        spec["name"],
                        frozenset(policy.role(r) for r in spec["roles"]),
                        spec.get("cardinality", 2),
                    )
                )
            for spec in data.get("dsd", ()):
                policy.add_dsd(
                    DSDConstraint(
                        spec["name"],
                        frozenset(policy.role(r) for r in spec["roles"]),
                        spec.get("cardinality", 2),
                    )
                )
            for user, role in data.get("user_roles", ()):
                policy.assign_user(user, role)
            for role, permission in data.get("role_permissions", ()):
                policy.assign_permission(role, permission)
        except KeyError as missing:
            raise PolicyError(f"policy spec missing key {missing}") from None
        return policy

    @staticmethod
    def from_text(text: str) -> "Policy":
        """Load a policy from the line-oriented text format — the
        analog of the Naplet Java policy files' grant statements::

            # the security officer's declarations
            user alice
            role auditor
            role clerk
            permission p_rsw exec rsw @ * constraint "count(0, 5, [res = rsw])" duration 30
            permission p_read read * @ *
            inherit auditor clerk          # auditor inherits clerk
            assign alice auditor           # UA
            grant auditor p_rsw            # PA
            ssd sep_duty auditor clerk cardinality 2
            dsd no_simultaneous auditor clerk

        ``#`` starts a comment; tokens follow shell quoting so constraint
        sources may contain spaces.  Duration accepts ``inf``.
        """
        policy = Policy()
        for line_no, raw in enumerate(text.splitlines(), 1):
            try:
                tokens = shlex.split(raw, comments=True)
            except ValueError as error:
                raise PolicyError(f"line {line_no}: {error}") from None
            if not tokens:
                continue
            keyword, args = tokens[0], tokens[1:]
            try:
                if keyword == "user":
                    (name,) = args
                    policy.add_user(name)
                elif keyword == "role":
                    (name,) = args
                    policy.add_role(name)
                elif keyword == "permission":
                    policy.add_permission(_parse_permission_line(args))
                elif keyword == "inherit":
                    senior, junior = args
                    policy.add_inheritance(senior, junior)
                elif keyword == "assign":
                    user, role = args
                    policy.assign_user(user, role)
                elif keyword == "grant":
                    role, permission = args
                    policy.assign_permission(role, permission)
                elif keyword in ("ssd", "dsd"):
                    name, roles, cardinality = _parse_separation_line(args)
                    role_set = frozenset(policy.role(r) for r in roles)
                    if keyword == "ssd":
                        policy.add_ssd(SSDConstraint(name, role_set, cardinality))
                    else:
                        policy.add_dsd(DSDConstraint(name, role_set, cardinality))
                else:
                    raise PolicyError(f"unknown keyword {keyword!r}")
            except PolicyError as error:
                raise PolicyError(f"line {line_no}: {error}") from None
            except (ValueError, TypeError):
                raise PolicyError(
                    f"line {line_no}: malformed {keyword!r} declaration: {raw.strip()!r}"
                ) from None
        return policy


def _parse_permission_line(args: list[str]) -> Permission:
    """``NAME OP RESOURCE @ SERVER [constraint "SRC"] [duration D]``."""
    if len(args) < 5 or args[3] != "@":
        raise ValueError("bad permission shape")
    name, op, resource, _, server = args[:5]
    rest = args[5:]
    constraint_src: str | None = None
    duration = math.inf
    index = 0
    while index < len(rest):
        key = rest[index]
        if key == "constraint" and index + 1 < len(rest):
            constraint_src = rest[index + 1]
        elif key == "duration" and index + 1 < len(rest):
            duration = float(rest[index + 1])
        else:
            raise ValueError(f"unknown permission option {key!r}")
        index += 2
    return Permission(
        name=name,
        op=op,
        resource=resource,
        server=server,
        spatial_constraint=(
            parse_constraint(constraint_src) if constraint_src else None
        ),
        validity_duration=duration,
    )


def _parse_separation_line(args: list[str]) -> tuple[str, list[str], int]:
    """``NAME ROLE ROLE... [cardinality K]``."""
    if len(args) < 3:
        raise ValueError("separation constraint needs a name and two roles")
    cardinality = 2
    if len(args) >= 2 and args[-2] == "cardinality":
        cardinality = int(args[-1])
        args = args[:-2]
    return args[0], args[1:], cardinality
