"""Coalition-environment substrate (paper Section 2).

Servers with local (skewed) clocks host shared resources; execution
proofs record successful accesses; coalition-wide channels and signals
carry SRAL's communication primitives.
"""

from repro.coalition.channels import EMPTY, Channel, ChannelTable, SignalTable
from repro.coalition.clock import ServerClock, make_clocks
from repro.coalition.network import (
    Coalition,
    LatencyModel,
    MembershipEvent,
    constant_latency,
    uniform_latency,
)
from repro.coalition.proofs import GENESIS_DIGEST, ExecutionProof, ProofRegistry
from repro.coalition.resource import DEFAULT_OPERATIONS, Resource, ResourceRegistry
from repro.coalition.server import AccessOutcome, CoalitionServer

__all__ = [
    "EMPTY",
    "Channel",
    "ChannelTable",
    "SignalTable",
    "ServerClock",
    "make_clocks",
    "Coalition",
    "LatencyModel",
    "MembershipEvent",
    "constant_latency",
    "uniform_latency",
    "GENESIS_DIGEST",
    "ExecutionProof",
    "ProofRegistry",
    "DEFAULT_OPERATIONS",
    "Resource",
    "ResourceRegistry",
    "AccessOutcome",
    "CoalitionServer",
]
