"""The coalition: a set of cooperating servers plus a latency model.

Multiple organisations "must cooperate to share the subset of their
protected resources necessary to the coalition" (Section 2).  The
:class:`Coalition` owns the server namespace, the shared channel and
signal tables (coalition-wide, so agents on different servers can
synchronise) and the migration latency model.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.coalition.channels import ChannelTable, SignalTable
from repro.coalition.server import CoalitionServer
from repro.errors import CoalitionError, MigrationError

__all__ = ["Coalition", "LatencyModel", "constant_latency", "uniform_latency"]

#: Maps an ordered server-name pair to a migration latency.
LatencyModel = Callable[[str, str], float]


def constant_latency(value: float = 1.0) -> LatencyModel:
    """Every migration takes ``value`` time units."""
    if value < 0:
        raise CoalitionError(f"latency must be non-negative, got {value}")

    def model(src: str, dst: str) -> float:
        return 0.0 if src == dst else value

    return model


def uniform_latency(table: dict[tuple[str, str], float], default: float = 1.0) -> LatencyModel:
    """Latencies from an explicit symmetric table with a default."""
    if default < 0:
        raise CoalitionError(f"default latency must be non-negative, got {default}")
    for (a, b), value in table.items():
        if value < 0:
            raise CoalitionError(f"latency {a}->{b} must be non-negative")

    def model(src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return table.get((src, dst), table.get((dst, src), default))

    return model


class Coalition:
    """A coalition environment: servers, channels, signals, latencies."""

    def __init__(
        self,
        servers: Iterable[CoalitionServer] = (),
        latency: LatencyModel | None = None,
    ):
        self._servers: dict[str, CoalitionServer] = {}
        self._frozen = False
        for server in servers:
            self.add_server(server)
        self.latency_model = latency if latency is not None else constant_latency()
        self.channels = ChannelTable()
        self.signals = SignalTable()

    # -- membership -----------------------------------------------------------

    def add_server(self, server: CoalitionServer) -> None:
        if self._frozen:
            raise CoalitionError(
                f"coalition membership is frozen; cannot add {server.name!r}"
            )
        if server.name in self._servers:
            raise CoalitionError(f"duplicate server {server.name!r}")
        self._servers[server.name] = server

    def freeze(self) -> None:
        """Make the membership immutable.  Service mode requires a
        fixed topology: shard routing and the proof-propagation layer
        cache the server list, which is only safe once no further
        :meth:`add_server` can occur.  Idempotent."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def server(self, name: str) -> CoalitionServer:
        try:
            return self._servers[name]
        except KeyError:
            raise CoalitionError(f"unknown server {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._servers

    def __iter__(self) -> Iterator[CoalitionServer]:
        return iter(self._servers.values())

    def __len__(self) -> int:
        return len(self._servers)

    def server_names(self) -> list[str]:
        return sorted(self._servers)

    # -- migration --------------------------------------------------------------

    def migration_latency(self, src: str, dst: str) -> float:
        """Time for a mobile object to travel ``src → dst``."""
        if dst not in self._servers:
            raise MigrationError(f"cannot migrate to unknown server {dst!r}")
        if src not in self._servers:
            raise MigrationError(f"cannot migrate from unknown server {src!r}")
        value = self.latency_model(src, dst)
        if value < 0:
            raise MigrationError(f"latency model returned negative value {value}")
        return value
