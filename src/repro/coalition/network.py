"""The coalition: a set of cooperating servers plus a latency model.

Multiple organisations "must cooperate to share the subset of their
protected resources necessary to the coalition" (Section 2).  The
:class:`Coalition` owns the server namespace, the shared channel and
signal tables (coalition-wide, so agents on different servers can
synchronise) and the migration latency model.

Membership is *dynamic*: the coalition carries a monotonically
increasing **membership epoch**, bumped by every :meth:`Coalition.join`,
:meth:`Coalition.leave`, :meth:`Coalition.evict` and
:meth:`Coalition.merge`.  Execution proofs are stamped with the epoch
in force when they were issued, and an eviction records the epoch at
which the departed server's proofs stop being admissible — decisions
never consume proofs originating from a server evicted before the
current epoch.  Components that cache topology (the proof-propagation
batcher, the decision service) subscribe to membership events instead
of freezing the coalition; :meth:`Coalition.freeze` remains available
as an explicit permanent pin for static deployments.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.coalition.channels import ChannelTable, SignalTable
from repro.coalition.server import CoalitionServer
from repro.errors import CoalitionError, MigrationError
from repro.obs import REGISTRY
from repro.traces.trace import AccessKey

__all__ = [
    "Coalition",
    "LatencyModel",
    "MembershipEvent",
    "constant_latency",
    "uniform_latency",
]

#: Maps an ordered server-name pair to a migration latency.
LatencyModel = Callable[[str, str], float]


def constant_latency(value: float = 1.0) -> LatencyModel:
    """Every migration takes ``value`` time units."""
    if value < 0:
        raise CoalitionError(f"latency must be non-negative, got {value}")

    def model(src: str, dst: str) -> float:
        return 0.0 if src == dst else value

    return model


def uniform_latency(table: dict[tuple[str, str], float], default: float = 1.0) -> LatencyModel:
    """Latencies from an explicit symmetric table with a default."""
    if default < 0:
        raise CoalitionError(f"default latency must be non-negative, got {default}")
    for (a, b), value in table.items():
        if value < 0:
            raise CoalitionError(f"latency {a}->{b} must be non-negative")

    def model(src: str, dst: str) -> float:
        if src == dst:
            return 0.0
        return table.get((src, dst), table.get((dst, src), default))

    return model


@dataclass(frozen=True)
class MembershipEvent:
    """One membership change, delivered to subscribed listeners.

    ``epoch`` is the coalition epoch *after* the change took effect,
    ``servers`` the affected server names (one for join/leave/evict,
    all adopted names for a merge) and ``at`` the simulation/global
    time the change happened."""

    kind: str  # "join" | "leave" | "evict" | "merge"
    epoch: int
    servers: tuple[str, ...]
    at: float


class Coalition:
    """A coalition environment: servers, channels, signals, latencies.

    Membership mutations (:meth:`join` / :meth:`leave` / :meth:`evict`
    / :meth:`merge`) are serialised under an internal lock and notify
    subscribed listeners *inside* that lock, so a listener always
    observes the membership state the event describes.  Reads
    (:meth:`server`, :meth:`migration_latency`, containment) are
    deliberately lock-free: membership changes swap/insert dict entries
    atomically under the GIL, and listeners such as the proof batcher
    take their own locks — never the coalition's — which keeps the
    lock order ``coalition → listener`` acyclic.
    """

    def __init__(
        self,
        servers: Iterable[CoalitionServer] = (),
        latency: LatencyModel | None = None,
    ):
        self._servers: dict[str, CoalitionServer] = {}
        self._frozen = False
        self._epoch = 0
        #: name -> epoch at which the server was evicted; its proofs are
        #: inadmissible from that epoch on (graceful leavers are *not*
        #: recorded here — their proofs stay valid forever).
        self._evicted: dict[str, int] = {}
        #: names that departed gracefully (drained + handed off).
        self._departed: set[str] = set()
        #: weak refs to membership listeners — the coalition outlives
        #: most subscribers (batchers, services, simulations) and must
        #: not pin them (or form __del__-hostile reference cycles).
        self._listeners: list[weakref.ref] = []
        self._membership_lock = threading.RLock()
        self.joins = 0
        self.leaves = 0
        self.evictions = 0
        self.merges = 0
        for server in servers:
            self.add_server(server)
        self.latency_model = latency if latency is not None else constant_latency()
        self.channels = ChannelTable()
        self.signals = SignalTable()
        REGISTRY.register_collector(self._collect_obs)

    def __del__(self):
        try:
            REGISTRY.absorb(self._collect_obs())
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def _collect_obs(self) -> dict[str, float]:
        return {
            "coalition.membership_epoch": self._epoch,
            "coalition.joins": self.joins,
            "coalition.leaves": self.leaves,
            "coalition.evictions": self.evictions,
            "coalition.merges": self.merges,
        }

    # -- membership -----------------------------------------------------------

    def add_server(self, server: CoalitionServer) -> None:
        """Found-time membership: add a server *before* traffic starts.

        Once the membership is live — frozen, past epoch 0, or watched
        by a listener such as :class:`~repro.service.ProofBatch` — this
        raises; use :meth:`join` instead, which bumps the epoch and
        notifies every subscriber.  (The old freeze-then-mutate footgun
        is now impossible: nothing can slip a server past a component
        that cached the topology.)
        """
        if self._frozen:
            raise CoalitionError(
                f"coalition membership is frozen; cannot add {server.name!r}"
            )
        if self._epoch > 0 or any(ref() is not None for ref in self._listeners):
            raise CoalitionError(
                f"coalition membership is live; use join() to add {server.name!r}"
            )
        if server.name in self._servers:
            raise CoalitionError(f"duplicate server {server.name!r}")
        self._servers[server.name] = server
        server.membership = self

    def subscribe(self, listener: Callable[[MembershipEvent], None]) -> None:
        """Register a membership listener.  Listeners are called in
        subscription order, synchronously, while the membership lock is
        held — they must not call back into membership mutation.  Only a
        weak reference is kept (a ``WeakMethod`` for bound methods), so
        subscribing never extends a component's lifetime; ``listener``
        must otherwise be owned by its subscriber."""
        make_ref = (
            weakref.WeakMethod if hasattr(listener, "__self__") else weakref.ref
        )
        with self._membership_lock:
            self._listeners.append(make_ref(listener))

    def _notify(self, event: MembershipEvent) -> None:
        live = []
        for ref in self._listeners:
            listener = ref()
            if listener is None:
                continue
            live.append(ref)
            listener(event)
        self._listeners[:] = live

    def _check_mutable(self, action: str) -> None:
        if self._frozen:
            raise CoalitionError(
                f"coalition membership is frozen; cannot {action}"
            )

    def join(
        self,
        server: CoalitionServer,
        now: float = 0.0,
        bootstrap_from: str | None = None,
    ) -> int:
        """A new server joins the live coalition.

        Bumps the membership epoch, bootstraps the joiner's announced
        proof ledger via a sync handshake with an existing member
        (``bootstrap_from`` or the first member in name order), and
        notifies listeners.  An evicted name can never rejoin — epoch
        admissibility is keyed by name, so name reuse would resurrect
        dead proofs.  Returns the new epoch."""
        with self._membership_lock:
            self._check_mutable(f"join {server.name!r}")
            if server.name in self._servers:
                raise CoalitionError(f"duplicate server {server.name!r}")
            if server.name in self._evicted:
                raise CoalitionError(
                    f"server name {server.name!r} was evicted at epoch "
                    f"{self._evicted[server.name]} and cannot rejoin"
                )
            if bootstrap_from is not None and bootstrap_from not in self._servers:
                raise CoalitionError(
                    f"cannot bootstrap from unknown server {bootstrap_from!r}"
                )
            source = bootstrap_from
            if source is None and self._servers:
                source = min(self._servers)
            if source is not None:
                server.bootstrap_announced(self._servers[source])
            self._servers[server.name] = server
            server.membership = self
            self._departed.discard(server.name)
            self._epoch += 1
            self.joins += 1
            self._notify(
                MembershipEvent("join", self._epoch, (server.name,), now)
            )
            return self._epoch

    def leave(self, name: str, now: float = 0.0) -> int:
        """A member departs *gracefully*: it drained its work and its
        issued proofs remain admissible forever.  Listeners (the proof
        batcher) get a chance to hand off parked/pending batches before
        the slot disappears.  Returns the new epoch."""
        with self._membership_lock:
            self._check_mutable(f"remove {name!r}")
            server = self.server(name)
            self._epoch += 1
            self.leaves += 1
            event = MembershipEvent("leave", self._epoch, (name,), now)
            self._notify(event)
            del self._servers[name]
            server.membership = None
            self._departed.add(name)
            return self._epoch

    def evict(self, name: str, now: float = 0.0) -> int:
        """A member departs *abruptly* and is evicted: from the new
        epoch on, **every** proof it ever issued is inadmissible —
        coalition decisions must never again be justified by it.
        Returns the new epoch."""
        with self._membership_lock:
            self._check_mutable(f"evict {name!r}")
            server = self.server(name)
            self._epoch += 1
            self.evictions += 1
            self._evicted[name] = self._epoch
            event = MembershipEvent("evict", self._epoch, (name,), now)
            self._notify(event)
            del self._servers[name]
            server.membership = None
            return self._epoch

    def merge(self, other: "Coalition", now: float = 0.0) -> int:
        """Absorb ``other``'s membership in a single epoch bump.

        The surviving coalition's latency model, channel and signal
        tables govern from here on.  The new epoch is
        ``max(self.epoch, other.epoch) + 1`` so every proof either side
        issued pre-merge carries an epoch strictly below it, and
        ``other``'s eviction table is adopted (its dead servers stay
        dead).  ``other`` is marked absorbed and refuses further
        membership operations.  Returns the new epoch."""
        if other is self:
            raise CoalitionError("cannot merge a coalition with itself")
        with self._membership_lock:
            self._check_mutable("merge")
            if other.frozen:
                raise CoalitionError("cannot merge a frozen coalition")
            overlap = self._servers.keys() & other._servers.keys()
            if overlap:
                raise CoalitionError(
                    f"cannot merge: duplicate server names {sorted(overlap)}"
                )
            revived = other._servers.keys() & self._evicted.keys()
            if revived:
                raise CoalitionError(
                    f"cannot merge: names {sorted(revived)} were evicted here"
                )
            adopted = tuple(sorted(other._servers))
            self._epoch = max(self._epoch, other._epoch) + 1
            self.merges += 1
            for name in adopted:
                server = other._servers[name]
                self._servers[name] = server
                server.membership = self
            # Their evicted servers stay inadmissible on this side too.
            for name in other._evicted:
                self._evicted.setdefault(name, self._epoch)
            self._departed |= other._departed
            other._servers.clear()
            other._frozen = True  # absorbed: no further membership ops
            self._notify(MembershipEvent("merge", self._epoch, adopted, now))
            return self._epoch

    def freeze(self) -> None:
        """Pin the membership permanently: any later :meth:`join`,
        :meth:`leave`, :meth:`evict` or :meth:`merge` raises.  Static
        deployments use this to rule dynamic membership out by
        construction.  Idempotent."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    # -- epochs & admissibility ------------------------------------------------

    @property
    def membership_epoch(self) -> int:
        """The current membership epoch (0 = founding membership)."""
        return self._epoch

    def evicted_epoch(self, name: str) -> int | None:
        """The epoch at which ``name`` was evicted, or ``None`` if it
        never was (members and graceful leavers)."""
        return self._evicted.get(name)

    def evictions_table(self) -> dict[str, int]:
        """Snapshot of ``name -> eviction epoch`` (the oracle's input)."""
        return dict(self._evicted)

    def is_admissible(self, server_name: str) -> bool:
        """May proofs issued at ``server_name`` justify decisions *now*?
        True for members and graceful alumni, False once evicted."""
        return server_name not in self._evicted

    def admissible_trace(
        self, accesses: Iterable[AccessKey]
    ) -> tuple[AccessKey, ...]:
        """Filter an access history down to admissible issuers — what
        the security manager feeds the decision engine in place of the
        raw carried chain."""
        if not self._evicted:
            return tuple(accesses)
        evicted = self._evicted
        return tuple(a for a in accesses if a.server not in evicted)

    def server(self, name: str) -> CoalitionServer:
        try:
            return self._servers[name]
        except KeyError:
            raise CoalitionError(f"unknown server {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._servers

    def __iter__(self) -> Iterator[CoalitionServer]:
        return iter(self._servers.values())

    def __len__(self) -> int:
        return len(self._servers)

    def server_names(self) -> list[str]:
        return sorted(self._servers)

    # -- migration --------------------------------------------------------------

    def migration_latency(self, src: str, dst: str) -> float:
        """Time for a mobile object to travel ``src → dst``."""
        if dst not in self._servers:
            raise MigrationError(f"cannot migrate to unknown server {dst!r}")
        if src not in self._servers:
            raise MigrationError(f"cannot migrate from unknown server {src!r}")
        value = self.latency_model(src, dst)
        if value < 0:
            raise MigrationError(f"latency model returned negative value {value}")
        return value
