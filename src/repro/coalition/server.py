"""Coalition servers.

A :class:`CoalitionServer` hosts shared resources behind its own clock.
Executing an access validates the resource and operation, stamps the
server's *local* time and issues the execution proof into the mobile
object's registry.  Authorization is interposed a layer above (the
Naplet security manager in :mod:`repro.agent.security`), mirroring the
paper's design where the Java ``SecurityManager`` guards the service
call and the server merely executes it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable

from repro.coalition.clock import ServerClock
from repro.coalition.proofs import ExecutionProof, ProofRegistry
from repro.coalition.resource import Resource, ResourceRegistry
from repro.errors import CoalitionError, ServerUnavailable
from repro.obs import REGISTRY
from repro.traces.trace import AccessKey

__all__ = ["CoalitionServer", "AccessOutcome"]


@dataclass(frozen=True)
class AccessOutcome:
    """Result of a successfully executed access: the issued proof plus
    the resource payload (digest for exec/read of content resources)."""

    proof: ExecutionProof
    value: object


class CoalitionServer:
    """One cooperating server of the coalition environment.

    Thread-safe: the per-server lock guards the execution counters,
    resource touch accounting and the announced-proof ledger, so
    concurrent agents executing on *different* servers never contend —
    each server is its own lock stripe of the coalition.  (The clock is
    an immutable ``ServerClock`` and needs no guarding.)
    """

    def __init__(
        self,
        name: str,
        resources: Iterable[Resource] = (),
        clock: ServerClock | None = None,
    ):
        if not name:
            raise CoalitionError("server name must be non-empty")
        self.name = name
        self.clock = clock if clock is not None else ServerClock()
        self.resources = ResourceRegistry(resources)
        self.executed_accesses = 0
        self.arrivals = 0
        #: Optional :class:`~repro.faults.lifecycle.ServerLifecycle`;
        #: when attached (``FaultPlan.install``), time-stamped
        #: operations refuse service while this server is down.
        self.lifecycle = None
        #: Back-reference to the owning :class:`~repro.coalition.network.
        #: Coalition` (set by the coalition on add/join/merge, cleared
        #: on leave/evict).  Duck-typed to avoid a circular import;
        #: supplies the membership epoch stamped into issued proofs and
        #: the admissibility check applied to received ones.
        self.membership = None
        self.rejected_unavailable = 0
        self._lock = threading.Lock()
        # Proofs announced by *other* servers (the batched propagation
        # layer's destination): object_id -> set of proof digests.
        self._announced: dict[str, set[str]] = {}
        self.announced_batches = 0
        self.proofs_learned = 0
        self.proofs_rejected_stale = 0
        self.bootstrap_syncs = 0
        REGISTRY.register_collector(self._collect_obs)

    def __del__(self):
        try:
            REGISTRY.absorb(self._collect_obs())
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    def _collect_obs(self) -> dict[str, float]:
        """Pull-time metrics source (all counters below are mutated
        under ``self._lock``; the registry sums across servers)."""
        return {
            "server.executed_accesses": self.executed_accesses,
            "server.arrivals": self.arrivals,
            "server.rejected_unavailable": self.rejected_unavailable,
            "server.announced_batches": self.announced_batches,
            "server.proofs_learned": self.proofs_learned,
            "server.proofs_rejected_stale": self.proofs_rejected_stale,
            "server.bootstrap_syncs": self.bootstrap_syncs,
        }

    # -- hosting -----------------------------------------------------------

    def note_arrival(self) -> None:
        """Book-keeping: a mobile object arrived here."""
        with self._lock:
            self.arrivals += 1

    def access_alphabet(self) -> tuple[AccessKey, ...]:
        """Every access this server can execute — one
        ``(op, resource, server)`` key per supported operation of each
        hosted resource, in deterministic order.  Feed this to
        :meth:`~repro.rbac.engine.AccessControlEngine.prewarm` so the
        compile and live-set caches are hot before the first request
        arrives."""
        return tuple(
            AccessKey(op, resource.name, self.name)
            for resource in sorted(self.resources, key=lambda r: r.name)
            for op in sorted(resource.operations)
        )

    # -- execution ------------------------------------------------------------

    def execute_access(
        self,
        registry: ProofRegistry,
        op: str,
        resource_name: str,
        global_time: float,
    ) -> AccessOutcome:
        """Execute ``op`` on ``resource_name`` for the mobile object that
        owns ``registry`` and issue the execution proof.

        The caller (the security manager) must have authorised the
        access already.  Raises :class:`~repro.errors.CoalitionError`
        for unknown resources or unsupported operations, and
        :class:`~repro.errors.ServerUnavailable` when an attached
        lifecycle says this server is not up at ``global_time``.
        """
        if self.lifecycle is not None and not self.lifecycle.can_execute(
            self.name, global_time
        ):
            with self._lock:
                self.rejected_unavailable += 1
            raise ServerUnavailable(
                f"server {self.name!r} is "
                f"{self.lifecycle.state(self.name, global_time).value} "
                f"at t={global_time} and cannot execute accesses"
            )
        resource = self.resources.get(resource_name)
        if not resource.supports(op):
            raise CoalitionError(
                f"resource {resource_name!r} at {self.name!r} does not support {op!r}"
            )
        access = AccessKey(op, resource_name, self.name)
        membership = self.membership
        epoch = membership.membership_epoch if membership is not None else 0
        proof = registry.record(
            access, self.clock.local_time(global_time), epoch=epoch
        )
        with self._lock:
            resource.touch()
            self.executed_accesses += 1
        value: object = None
        if op in ("read", "exec") and resource.content:
            # Reading returns the content; executing a content-bearing
            # module returns its digest (what the integrity auditor needs).
            value = resource.content if op == "read" else resource.digest()
        return AccessOutcome(proof=proof, value=value)

    # -- proof propagation ------------------------------------------------------

    def receive_proofs(
        self, proofs: Iterable[ExecutionProof], now: float | None = None
    ) -> int:
        """Adopt a batch of execution proofs announced by other
        coalition servers (:class:`repro.service.ProofBatch` delivery).
        The ledger lets this server answer ``Pr_x(a)`` for roaming
        objects without replaying their full carried chain.  Returns
        the number of proofs newly learned.

        With a time-stamped delivery (``now``) and an attached
        lifecycle, a DOWN server refuses the batch with
        :class:`~repro.errors.ServerUnavailable` (a RECOVERING server
        accepts — catching up on propagation precedes serving).
        """
        if (
            now is not None
            and self.lifecycle is not None
            and not self.lifecycle.can_receive(self.name, now)
        ):
            with self._lock:
                self.rejected_unavailable += 1
            raise ServerUnavailable(
                f"server {self.name!r} is down at t={now} and cannot "
                f"receive proof deliveries"
            )
        learned = 0
        membership = self.membership
        with self._lock:
            self.announced_batches += 1
            for proof in proofs:
                # Acceptance check: never adopt a proof issued at a
                # server that has been evicted from the coalition — it
                # could otherwise corroborate a decision the current
                # membership no longer justifies.
                if membership is not None and not membership.is_admissible(
                    proof.access.server
                ):
                    self.proofs_rejected_stale += 1
                    continue
                digests = self._announced.setdefault(proof.object_id, set())
                if proof.digest not in digests:
                    digests.add(proof.digest)
                    learned += 1
            self.proofs_learned += learned
        return learned

    def bootstrap_announced(self, peer: "CoalitionServer") -> int:
        """Join-time sync handshake: copy ``peer``'s announced-proof
        ledger so a freshly joined server starts with the coalition's
        propagated state instead of an empty view (it would otherwise
        fail-closed on every roaming object until propagation caught
        up).  Returns the number of proofs learned."""
        snapshot = {
            object_id: set(digests)
            for object_id, digests in peer._snapshot_announced().items()
        }
        learned = 0
        with self._lock:
            self.bootstrap_syncs += 1
            for object_id, digests in snapshot.items():
                known = self._announced.setdefault(object_id, set())
                learned += len(digests - known)
                known |= digests
            self.proofs_learned += learned
        return learned

    def _snapshot_announced(self) -> dict[str, set[str]]:
        with self._lock:
            return {k: set(v) for k, v in self._announced.items()}

    def knows_proof(self, proof: ExecutionProof) -> bool:
        """Has this server learned ``proof`` through propagation?"""
        with self._lock:
            return proof.digest in self._announced.get(proof.object_id, ())

    def announced_proof_count(self) -> int:
        """Total proofs learned from other servers."""
        with self._lock:
            return sum(len(d) for d in self._announced.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"CoalitionServer({self.name!r}, resources={len(self.resources)}, "
            f"executed={self.executed_accesses})"
        )
