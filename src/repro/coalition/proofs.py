"""Execution proofs (the paper's ``Pr_x``).

"We assume when an access request to a shared resource is executed by a
coalition server, a execution proof will be issued to the mobile
object.  It records the information of (o, op, r, s) for the access,
and the execution time" (Section 2).

Each :class:`ExecutionProof` is hash-chained to its predecessor for the
same mobile object, so a server receiving a roaming object can verify
that the presented history was not reordered or truncated in the middle
(truncating the *tail* is detectable only against the issuing servers,
as in any offline token scheme — a limitation the paper shares).
``Pr_x(a)`` is :meth:`ProofRegistry.proved`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import CoalitionError
from repro.traces.trace import AccessKey, Trace

__all__ = ["ExecutionProof", "ProofRegistry", "GENESIS_DIGEST"]

#: Chain head for an object with no prior accesses.
GENESIS_DIGEST = hashlib.sha256(b"repro-proof-genesis").hexdigest()


@dataclass(frozen=True)
class ExecutionProof:
    """Proof that mobile object ``object_id`` performed ``access`` at
    server-local time ``local_time`` (sequence number ``seq`` in the
    object's history).

    ``epoch`` is the coalition membership epoch in force when the
    proof was issued.  It is covered by the digest (wire tampering with
    the tag is detectable) and lets any verifier replay admissibility
    decisions after the fact: a proof issued at a server later evicted
    at epoch ``E`` justifies only decisions taken at epochs ``< E``.
    """

    object_id: str
    access: AccessKey
    local_time: float
    seq: int
    prev_digest: str
    digest: str
    epoch: int = 0

    @staticmethod
    def issue(
        object_id: str,
        access: AccessKey | tuple[str, str, str],
        local_time: float,
        seq: int,
        prev_digest: str,
        epoch: int = 0,
    ) -> "ExecutionProof":
        """Create a proof chained onto ``prev_digest``."""
        access = AccessKey(*access)
        digest = ExecutionProof._compute_digest(
            object_id, access, local_time, seq, prev_digest, epoch
        )
        return ExecutionProof(
            object_id, access, local_time, seq, prev_digest, digest, epoch
        )

    @staticmethod
    def _compute_digest(
        object_id: str,
        access: AccessKey,
        local_time: float,
        seq: int,
        prev_digest: str,
        epoch: int = 0,
    ) -> str:
        material = "|".join(
            (
                object_id,
                access.op,
                access.resource,
                access.server,
                repr(local_time),
                str(seq),
                prev_digest,
            )
        )
        # Epoch 0 (a static coalition) is left out of the material so
        # chains recorded before membership epochs existed still verify.
        if epoch:
            material = f"{material}|epoch:{epoch}"
        return hashlib.sha256(material.encode()).hexdigest()

    def is_consistent(self) -> bool:
        """Recompute the digest and compare (tamper check for a single
        link)."""
        return self.digest == self._compute_digest(
            self.object_id,
            self.access,
            self.local_time,
            self.seq,
            self.prev_digest,
            self.epoch,
        )

    def to_dict(self) -> dict:
        """A JSON-safe representation (wire format for carrying proofs
        between organisations)."""
        return {
            "object_id": self.object_id,
            "access": list(self.access),
            "local_time": self.local_time,
            "seq": self.seq,
            "prev_digest": self.prev_digest,
            "digest": self.digest,
            "epoch": self.epoch,
        }

    @staticmethod
    def from_dict(data: dict) -> "ExecutionProof":
        """Parse the wire format; digest consistency is *not* assumed —
        verify via :meth:`ProofRegistry.extend_verified` or
        :meth:`is_consistent`.  Records predating membership epochs
        (no ``epoch`` key) parse as epoch 0."""
        try:
            return ExecutionProof(
                object_id=data["object_id"],
                access=AccessKey(*data["access"]),
                local_time=float(data["local_time"]),
                seq=int(data["seq"]),
                prev_digest=data["prev_digest"],
                digest=data["digest"],
                epoch=int(data.get("epoch", 0)),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CoalitionError(f"malformed proof record: {error}") from None


class ProofRegistry:
    """Append-only, hash-chained access history of one mobile object.

    Thread-safe: issuing a proof reads the chain tail and appends in
    one step, so concurrent recorders (engine shards, batched
    propagation) can never fork the chain.  Queries take the same lock
    and return immutable snapshots.
    """

    def __init__(self, object_id: str):
        self.object_id = object_id
        self._lock = threading.Lock()
        self._proofs: list[ExecutionProof] = []

    # -- recording ---------------------------------------------------------

    def record(
        self,
        access: AccessKey | tuple[str, str, str],
        local_time: float,
        epoch: int = 0,
    ) -> ExecutionProof:
        """Issue and append the proof for a freshly executed access,
        stamped with the membership ``epoch`` in force at the issuing
        server."""
        with self._lock:
            prev = self._proofs[-1].digest if self._proofs else GENESIS_DIGEST
            proof = ExecutionProof.issue(
                self.object_id, access, local_time, len(self._proofs), prev, epoch
            )
            self._proofs.append(proof)
        return proof

    def extend_verified(self, proofs: Iterable[ExecutionProof]) -> None:
        """Adopt an externally presented proof sequence after verifying
        it chains onto the current history (used when a server imports
        the history a roaming object carries)."""
        with self._lock:
            for proof in proofs:
                prev = self._proofs[-1].digest if self._proofs else GENESIS_DIGEST
                prev_epoch = self._proofs[-1].epoch if self._proofs else 0
                if proof.object_id != self.object_id:
                    raise CoalitionError(
                        f"proof belongs to {proof.object_id!r}, not {self.object_id!r}"
                    )
                if proof.seq != len(self._proofs):
                    raise CoalitionError(
                        f"proof sequence gap: expected {len(self._proofs)}, "
                        f"got {proof.seq}"
                    )
                if proof.prev_digest != prev:
                    raise CoalitionError("proof chain broken: prev digest mismatch")
                if not proof.is_consistent():
                    raise CoalitionError("proof digest does not match its contents")
                if proof.epoch < prev_epoch:
                    # Membership epochs only move forward; a chain whose
                    # tags regress was stitched from different histories.
                    raise CoalitionError(
                        f"proof epoch regressed: {proof.epoch} after {prev_epoch}"
                    )
                self._proofs.append(proof)

    # -- queries -------------------------------------------------------------

    def proved(self, access: AccessKey | tuple[str, str, str]) -> bool:
        """``Pr_x(a)``: has ``a`` been successfully carried out?"""
        access = AccessKey(*access)
        with self._lock:
            return any(p.access == access for p in self._proofs)

    def trace(self) -> Trace:
        """The proved access history as a trace (Definition 3.6 input)."""
        with self._lock:
            return tuple(p.access for p in self._proofs)

    def proofs(self) -> tuple[ExecutionProof, ...]:
        with self._lock:
            return tuple(self._proofs)

    def foreign_proofs(self, server: str) -> tuple[ExecutionProof, ...]:
        """Proofs issued at servers other than ``server`` — the part of
        the carried chain a deciding server can only corroborate
        through propagation (the degradation gate's input)."""
        with self._lock:
            return tuple(p for p in self._proofs if p.access.server != server)

    def verify_chain(self) -> bool:
        """Check the whole chain: digests consistent, sequence dense,
        links connected."""
        prev = GENESIS_DIGEST
        for index, proof in enumerate(self.proofs()):
            if (
                proof.seq != index
                or proof.prev_digest != prev
                or proof.object_id != self.object_id
                or not proof.is_consistent()
            ):
                return False
            prev = proof.digest
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._proofs)

    def __iter__(self) -> Iterator[ExecutionProof]:
        return iter(self.proofs())

    # -- wire format ---------------------------------------------------------

    def to_json(self) -> str:
        """Serialise the whole chain (what a roaming object carries)."""
        return json.dumps(
            {
                "object_id": self.object_id,
                "proofs": [p.to_dict() for p in self.proofs()],
            }
        )

    @staticmethod
    def from_json(text: str) -> "ProofRegistry":
        """Parse and *verify* a carried chain; raises
        :class:`~repro.errors.CoalitionError` on malformed input or a
        broken chain (the receiving server's import path)."""
        try:
            data = json.loads(text)
            object_id = data["object_id"]
            records = data["proofs"]
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            raise CoalitionError(f"malformed proof chain: {error}") from None
        registry = ProofRegistry(object_id)
        registry.extend_verified(
            ExecutionProof.from_dict(record) for record in records
        )
        return registry
