"""Shared resources hosted by coalition servers.

A :class:`Resource` is a named object a server exposes to roaming
mobile objects, with a declared set of supported operations (the
paper's ``OP`` — execute/read/write for file-system style resources)
and optional binary content (used by the Section 6 integrity
application, whose mobile auditor hashes module blobs).

:class:`ResourceRegistry` is a server's catalogue with access counting.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import CoalitionError

__all__ = ["Resource", "ResourceRegistry", "DEFAULT_OPERATIONS"]

#: Operations supported when none are declared explicitly.
DEFAULT_OPERATIONS = frozenset({"read", "write", "exec"})


@dataclass
class Resource:
    """A shared resource.

    Parameters
    ----------
    name:
        Resource identifier, unique within a server.
    operations:
        Operations the resource supports; requests for others fail with
        :class:`~repro.errors.CoalitionError` before reaching access
        control.
    content:
        Optional payload (module bytes, document text, ...).
    kind:
        Free-form classification tag (``"module"``, ``"service"``, ...)
        usable by selections and policies.
    """

    name: str
    operations: frozenset[str] = DEFAULT_OPERATIONS
    content: bytes = b""
    kind: str = "generic"
    access_count: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise CoalitionError("resource name must be non-empty")
        self.operations = frozenset(self.operations)
        if not self.operations:
            raise CoalitionError(f"resource {self.name!r} supports no operation")

    def supports(self, op: str) -> bool:
        """Does this resource support operation ``op``?"""
        return op in self.operations

    def digest(self) -> str:
        """SHA-256 of the content — what the Section 6 mobile auditor
        computes to verify module integrity."""
        return hashlib.sha256(self.content).hexdigest()

    def touch(self) -> None:
        """Record one successful access."""
        self.access_count += 1


class ResourceRegistry:
    """A server's resource catalogue."""

    def __init__(self, resources: Iterable[Resource] = ()):
        self._resources: dict[str, Resource] = {}
        for resource in resources:
            self.add(resource)

    def add(self, resource: Resource) -> None:
        if resource.name in self._resources:
            raise CoalitionError(f"duplicate resource {resource.name!r}")
        self._resources[resource.name] = resource

    def get(self, name: str) -> Resource:
        try:
            return self._resources[name]
        except KeyError:
            raise CoalitionError(f"unknown resource {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._resources

    def __iter__(self) -> Iterator[Resource]:
        return iter(self._resources.values())

    def __len__(self) -> int:
        return len(self._resources)

    def names(self) -> list[str]:
        return sorted(self._resources)
