"""Channels and signals — SRAL's communication primitives.

``ch ? x`` receives (blocking while the channel is empty); ``ch ! e``
appends a value and wakes blocked receivers; ``signal(ξ)`` /
``wait(ξ)`` enforce order synchronisation: the wait may only proceed
after the signal was raised (Definition 3.1's explanation).

These are *passive* structures: blocking is realised by the
discrete-event scheduler (:mod:`repro.agent.scheduler`).  A receive
either returns a value or registers the caller as a waiter; a send
returns the list of waiters to wake.  This mirrors the message-passing
substrate style of MPI-like systems (explicit send/recv with wake-up on
message arrival) without threads.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable

from repro.errors import ChannelError

__all__ = ["Channel", "ChannelTable", "SignalTable", "EMPTY"]


class _Empty:
    """Sentinel returned by :meth:`Channel.try_receive` on an empty
    channel (None is a legal payload)."""

    _instance: "_Empty | None" = None

    def __new__(cls) -> "_Empty":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "EMPTY"


EMPTY = _Empty()


class Channel:
    """An unbounded FIFO channel."""

    def __init__(self, name: str):
        if not name:
            raise ChannelError("channel name must be non-empty")
        self.name = name
        self._queue: deque[Any] = deque()
        self._waiters: deque[Hashable] = deque()

    # -- data --------------------------------------------------------------

    def try_receive(self) -> Any:
        """Pop the oldest value, or return :data:`EMPTY` if none."""
        if self._queue:
            return self._queue.popleft()
        return EMPTY

    def send(self, value: Any) -> list[Hashable]:
        """Append ``value``; return the waiters to wake (cleared here —
        the scheduler re-runs them and they re-attempt the receive)."""
        self._queue.append(value)
        woken = list(self._waiters)
        self._waiters.clear()
        return woken

    # -- blocking bookkeeping -------------------------------------------------

    def add_waiter(self, agent_id: Hashable) -> None:
        """Register an agent blocked on an empty receive."""
        if agent_id in self._waiters:
            raise ChannelError(f"agent {agent_id!r} already waiting on {self.name!r}")
        self._waiters.append(agent_id)

    def waiters(self) -> tuple[Hashable, ...]:
        return tuple(self._waiters)

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Channel({self.name!r}, queued={len(self._queue)}, waiters={len(self._waiters)})"


class ChannelTable:
    """Coalition-wide channel namespace (channels are shared; mobile
    objects on different servers may communicate through them)."""

    def __init__(self) -> None:
        self._channels: dict[str, Channel] = {}

    def get(self, name: str) -> Channel:
        """Fetch (creating on first use) the channel ``name``."""
        channel = self._channels.get(name)
        if channel is None:
            channel = Channel(name)
            self._channels[name] = channel
        return channel

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def names(self) -> list[str]:
        return sorted(self._channels)


class SignalTable:
    """Order-synchronisation signals: ``wait(ξ)`` proceeds only after
    ``signal(ξ)`` has been performed.  Signals are sticky (once raised,
    every later wait passes), matching the paper's one-directional
    ordering semantics."""

    def __init__(self) -> None:
        self._raised: set[str] = set()
        self._waiters: dict[str, deque[Hashable]] = {}

    def raise_signal(self, event: str) -> list[Hashable]:
        """Raise ``event``; returns the blocked waiters to wake."""
        self._raised.add(event)
        woken = list(self._waiters.pop(event, ()))
        return woken

    def is_raised(self, event: str) -> bool:
        return event in self._raised

    def add_waiter(self, event: str, agent_id: Hashable) -> None:
        """Register an agent blocked on an un-raised signal."""
        if event in self._raised:
            raise ChannelError(f"signal {event!r} already raised; nothing to wait for")
        queue = self._waiters.setdefault(event, deque())
        if agent_id in queue:
            raise ChannelError(f"agent {agent_id!r} already waiting on {event!r}")
        queue.append(agent_id)

    def waiters(self, event: str) -> tuple[Hashable, ...]:
        return tuple(self._waiters.get(event, ()))

    def pending_events(self) -> list[str]:
        """Events with blocked waiters (deadlock diagnostics)."""
        return sorted(e for e, q in self._waiters.items() if q)
