"""Channels and signals — SRAL's communication primitives.

``ch ? x`` receives (blocking while the channel is empty); ``ch ! e``
appends a value and wakes blocked receivers; ``signal(ξ)`` /
``wait(ξ)`` enforce order synchronisation: the wait may only proceed
after the signal was raised (Definition 3.1's explanation).

These are *passive* structures: blocking is realised by the
discrete-event scheduler (:mod:`repro.agent.scheduler`).  A receive
either returns a value or registers the caller as a waiter; a send
returns the list of waiters to wake.  This mirrors the message-passing
substrate style of MPI-like systems (explicit send/recv with wake-up on
message arrival) without threads.

Thread safety: each :class:`Channel` guards its queue + waiter state
with its own lock, and the coalition-wide tables stripe their
namespace locks by key (:class:`repro.concurrency.LockStripe`), so
concurrent agents on *different* channels or signals never contend on
one global lock — only same-key operations serialise.  The
single-threaded scheduler pays one uncontended lock acquisition per
operation, which is noise next to the event-heap work.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Hashable

from repro.concurrency import DEFAULT_STRIPES, LockStripe
from repro.errors import ChannelError

__all__ = ["Channel", "ChannelTable", "SignalTable", "EMPTY"]


class _Empty:
    """Sentinel returned by :meth:`Channel.try_receive` on an empty
    channel (None is a legal payload)."""

    _instance: "_Empty | None" = None

    def __new__(cls) -> "_Empty":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover
        return "EMPTY"


EMPTY = _Empty()


class Channel:
    """An unbounded FIFO channel."""

    def __init__(self, name: str):
        if not name:
            raise ChannelError("channel name must be non-empty")
        self.name = name
        self._lock = threading.Lock()
        self._queue: deque[Any] = deque()
        self._waiters: deque[Hashable] = deque()

    # -- data --------------------------------------------------------------

    def try_receive(self) -> Any:
        """Pop the oldest value, or return :data:`EMPTY` if none."""
        with self._lock:
            if self._queue:
                return self._queue.popleft()
            return EMPTY

    def send(self, value: Any) -> list[Hashable]:
        """Append ``value``; return the waiters to wake (cleared here —
        the scheduler re-runs them and they re-attempt the receive)."""
        with self._lock:
            self._queue.append(value)
            woken = list(self._waiters)
            self._waiters.clear()
        return woken

    # -- blocking bookkeeping -------------------------------------------------

    def add_waiter(self, agent_id: Hashable) -> None:
        """Register an agent blocked on an empty receive."""
        with self._lock:
            if agent_id in self._waiters:
                raise ChannelError(
                    f"agent {agent_id!r} already waiting on {self.name!r}"
                )
            self._waiters.append(agent_id)

    def waiters(self) -> tuple[Hashable, ...]:
        with self._lock:
            return tuple(self._waiters)

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Channel({self.name!r}, queued={len(self._queue)}, waiters={len(self._waiters)})"


class ChannelTable:
    """Coalition-wide channel namespace (channels are shared; mobile
    objects on different servers may communicate through them).

    Creation is lock-striped by channel name: the fast path is a plain
    dict read (atomic in CPython), and a miss takes only the stripe
    lock for that name, so first-use creation of unrelated channels
    does not serialise.
    """

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        self._channels: dict[str, Channel] = {}
        self._stripes = LockStripe(stripes)

    def get(self, name: str) -> Channel:
        """Fetch (creating on first use) the channel ``name``."""
        channel = self._channels.get(name)
        if channel is None:
            with self._stripes.lock_for(name):
                channel = self._channels.get(name)
                if channel is None:
                    channel = Channel(name)
                    self._channels[name] = channel
        return channel

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def names(self) -> list[str]:
        return sorted(self._channels)


class SignalTable:
    """Order-synchronisation signals: ``wait(ξ)`` proceeds only after
    ``signal(ξ)`` has been performed.  Signals are sticky (once raised,
    every later wait passes), matching the paper's one-directional
    ordering semantics.

    Raise/wait races are the classic lost-wake-up hazard: a waiter that
    registers just after the signal fires must not block forever.  Both
    :meth:`raise_signal` and :meth:`add_waiter` therefore take the
    stripe lock of the event, making "check raised + register" and
    "mark raised + collect waiters" atomic per event while unrelated
    events proceed in parallel."""

    def __init__(self, stripes: int = DEFAULT_STRIPES) -> None:
        self._raised: set[str] = set()
        self._waiters: dict[str, deque[Hashable]] = {}
        self._stripes = LockStripe(stripes)

    def raise_signal(self, event: str) -> list[Hashable]:
        """Raise ``event``; returns the blocked waiters to wake."""
        with self._stripes.lock_for(event):
            self._raised.add(event)
            woken = list(self._waiters.pop(event, ()))
        return woken

    def is_raised(self, event: str) -> bool:
        return event in self._raised

    def add_waiter(self, event: str, agent_id: Hashable) -> None:
        """Register an agent blocked on an un-raised signal."""
        with self._stripes.lock_for(event):
            if event in self._raised:
                raise ChannelError(
                    f"signal {event!r} already raised; nothing to wait for"
                )
            queue = self._waiters.setdefault(event, deque())
            if agent_id in queue:
                raise ChannelError(f"agent {agent_id!r} already waiting on {event!r}")
            queue.append(agent_id)

    def waiters(self, event: str) -> tuple[Hashable, ...]:
        with self._stripes.lock_for(event):
            return tuple(self._waiters.get(event, ()))

    def pending_events(self) -> list[str]:
        """Events with blocked waiters (deadlock diagnostics)."""
        return sorted(e for e, q in self._waiters.items() if q)
