"""Per-server clocks with skew and drift.

"There is no global clock in distributed systems and the arrival time
of a mobile object on a server is unpredictable" (Section 4) — the
paper's motivation for duration-based (rather than absolute-interval)
temporal constraints.  We model exactly that: the simulation scheduler
keeps a *virtual global time* that no server can observe; each server
reads time through its own :class:`ServerClock` with a fixed offset
(skew) and a rate error (drift).

Durations measured on a single server are distorted only by drift
(typically parts per million), which is why the paper's
duration-with-local-base-time scheme is robust where absolute interval
schemes (TRBAC/GTRBAC) are not; the benchmarks quantify this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CoalitionError

__all__ = ["ServerClock", "make_clocks"]


@dataclass(frozen=True)
class ServerClock:
    """A server's local clock.

    ``local = (1 + drift) * global + skew``.  ``drift`` is a small rate
    error (e.g. ``1e-5`` = 10 ppm); ``skew`` is a constant offset in
    time units.
    """

    skew: float = 0.0
    drift: float = 0.0

    def __post_init__(self) -> None:
        if self.drift <= -1.0:
            raise CoalitionError(f"drift {self.drift} would stop or reverse time")

    def local_time(self, global_time: float) -> float:
        """The time this server's clock shows at virtual instant
        ``global_time``."""
        return (1.0 + self.drift) * global_time + self.skew

    def global_time(self, local_time: float) -> float:
        """Invert :meth:`local_time`."""
        return (local_time - self.skew) / (1.0 + self.drift)

    def local_duration(self, global_duration: float) -> float:
        """How long a virtual duration appears on this clock (drift
        only; skew cancels)."""
        return (1.0 + self.drift) * global_duration


def make_clocks(
    count: int,
    max_skew: float = 5.0,
    max_drift: float = 1e-4,
    seed: int | None = None,
) -> list[ServerClock]:
    """Random clocks for ``count`` servers, uniform skew in
    ``[-max_skew, max_skew]`` and drift in ``[-max_drift, max_drift]``.
    Deterministic under a fixed ``seed``."""
    if count < 0:
        raise CoalitionError("count must be non-negative")
    rng = np.random.default_rng(seed)
    skews = rng.uniform(-max_skew, max_skew, size=count)
    drifts = rng.uniform(-max_drift, max_drift, size=count)
    return [ServerClock(float(s), float(d)) for s, d in zip(skews, drifts)]
